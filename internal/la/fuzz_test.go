package la

import (
	"encoding/binary"
	"math"
	"testing"
)

// The fuzz targets assert totality and numerical sanity of the direct
// solvers: arbitrary inputs must produce a solution or a sentinel error,
// never a panic, and when the fuzzer happens to build a strictly
// diagonally dominant system — where the condition number is provably
// bounded — the residual must actually be small.

// floatsFrom decodes data as little-endian float64s.
func floatsFrom(data []byte) []float64 {
	vals := make([]float64, len(data)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return vals
}

func allFinite(xs ...[]float64) bool {
	for _, x := range xs {
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return false
			}
		}
	}
	return true
}

func maxAbs(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		m = math.Max(m, math.Abs(v))
	}
	return m
}

func FuzzSolveTridiagonal(f *testing.F) {
	seed := make([]byte, 16*8)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(seed[8*i:], math.Float64bits(1))                 // sub
		binary.LittleEndian.PutUint64(seed[8*(4+i):], math.Float64bits(4))             // diag
		binary.LittleEndian.PutUint64(seed[8*(8+i):], math.Float64bits(1))             // super
		binary.LittleEndian.PutUint64(seed[8*(12+i):], math.Float64bits(1+float64(i))) // rhs
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := floatsFrom(data)
		n := len(vals) / 4
		if n == 0 {
			return
		}
		a, b, c, rhs := vals[:n], vals[n:2*n], vals[2*n:3*n], vals[3*n:4*n]
		dst := make([]float64, n)
		if err := SolveTridiagonal(dst, a, b, c, rhs); err != nil {
			return // ErrSingular and length mismatches are in-contract
		}
		if !allFinite(a, b, c, rhs) {
			return
		}
		// Strict diagonal dominance with unit margin bounds ‖A⁻¹‖∞ ≤ 1,
		// so the Thomas algorithm must deliver a small residual here.
		for i := 0; i < n; i++ {
			sub, sup := 0.0, 0.0
			if i > 0 {
				sub = math.Abs(a[i])
			}
			if i < n-1 {
				sup = math.Abs(c[i])
			}
			if math.Abs(b[i]) < sub+sup+1 {
				return
			}
		}
		tol := 1e-8 * float64(n) * (1 + maxAbs(rhs) + maxAbs(dst))
		for i := 0; i < n; i++ {
			r := b[i]*dst[i] - rhs[i]
			if i > 0 {
				r += a[i] * dst[i-1]
			}
			if i < n-1 {
				r += c[i] * dst[i+1]
			}
			if math.Abs(r) > tol {
				t.Fatalf("row %d residual %g exceeds %g on a diagonally dominant system", i, r, tol)
			}
		}
	})
}

// fuzzCSRFrom builds an n×n CSR from a byte-stream of (row, col, value)
// triplets with small-integer values, so duplicate accumulation is exact.
func fuzzCSRFrom(n int, data []byte) (*CSR, int) {
	coo := NewCOO(n, n)
	appended := 0
	for len(data) >= 3 {
		i, j, v := int(data[0])%n, int(data[1])%n, float64(int8(data[2]))
		coo.Append(i, j, v)
		appended++
		data = data[3:]
	}
	return coo.ToCSR(), appended
}

func FuzzBandLU(f *testing.F) {
	f.Add(uint8(3), []byte{0, 0, 4, 1, 1, 4, 2, 2, 4, 0, 1, 1, 1, 0, 1})
	f.Add(uint8(1), []byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := 1 + int(nRaw)%8
		m, _ := fuzzCSRFrom(n, data)
		lu, err := FactorBandLU(m)
		if err != nil {
			return // singular systems are in-contract
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i + 1)
		}
		x := make([]float64, n)
		if err := lu.Solve(x, b); err != nil {
			return
		}
		if !allFinite(x) {
			return // overflow on near-singular input is acceptable
		}
		// Integer matrix, modest size: dominance again certifies the residual.
		for i := 0; i < n; i++ {
			off := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					off += math.Abs(m.At(i, j))
				}
			}
			if math.Abs(m.At(i, i)) < off+1 {
				return
			}
		}
		r := make([]float64, n)
		m.Residual(r, b, x)
		tol := 1e-8 * float64(n) * (1 + maxAbs(b) + maxAbs(x))
		if maxAbs(r) > tol {
			t.Fatalf("residual %g exceeds %g on a diagonally dominant system", maxAbs(r), tol)
		}
	})
}

func FuzzCSR(f *testing.F) {
	f.Add(uint8(4), []byte{0, 0, 2, 1, 1, 3, 0, 0, 1, 3, 2, 5})
	f.Add(uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := 1 + int(nRaw)%8
		m, appended := fuzzCSRFrom(n, data)
		if m.NNZ() > appended {
			t.Fatalf("NNZ %d exceeds appended triplets %d", m.NNZ(), appended)
		}
		// Transposing twice is the identity; values are exact integers.
		tt := m.Transpose().Transpose()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) != tt.At(i, j) { //pdevet:allow floateq integer-valued entries are exact
					t.Fatalf("transpose^2 mismatch at (%d,%d): %g vs %g", i, j, m.At(i, j), tt.At(i, j))
				}
			}
		}
		// MulVec with the all-ones vector returns exact integer row sums.
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		got := make([]float64, n)
		m.MulVec(got, ones)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += m.At(i, j)
			}
			if got[i] != sum { //pdevet:allow floateq integer-valued entries are exact
				t.Fatalf("row %d: MulVec %g, At-sum %g", i, got[i], sum)
			}
		}
	})
}
