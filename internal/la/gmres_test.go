package la

import (
	"math"
	"math/rand"
	"testing"
)

func TestGMRESOnNonsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	n := 90
	bld := NewCOO(n, n)
	for i := 0; i < n; i++ {
		bld.Append(i, i, 3)
		if i > 0 {
			bld.Append(i, i-1, -1.6)
		}
		if i < n-1 {
			bld.Append(i, i+1, -0.4)
		}
	}
	a := bld.ToCSR()
	want := randomVec(rng, n)
	b := make([]float64, n)
	a.MulVec(b, want)
	x := make([]float64, n)
	st, err := GMRES(a, x, b, GMRESOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("GMRES did not converge")
	}
	vecAlmostEq(t, x, want, 1e-6)
}

func TestGMRESRestartStillConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := laplacian2D(9, 9)
	want := randomVec(rng, 81)
	b := make([]float64, 81)
	a.MulVec(b, want)
	x := make([]float64, 81)
	st, err := GMRES(a, x, b, GMRESOptions{Tol: 1e-10, Restart: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("restarted GMRES(5) should still converge on the Laplacian")
	}
	vecAlmostEq(t, x, want, 1e-5)
}

func TestGMRESPreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := laplacian2D(10, 10)
	want := randomVec(rng, 100)
	b := make([]float64, 100)
	a.MulVec(b, want)
	ilu, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	xPre := make([]float64, 100)
	stPre, err := GMRES(a, xPre, b, GMRESOptions{Tol: 1e-10, M: ilu})
	if err != nil {
		t.Fatal(err)
	}
	xPlain := make([]float64, 100)
	stPlain, err := GMRES(a, xPlain, b, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if stPre.Iterations >= stPlain.Iterations {
		t.Fatalf("ILU0-GMRES (%d iters) not faster than plain (%d)", stPre.Iterations, stPlain.Iterations)
	}
	vecAlmostEq(t, xPre, want, 1e-5)
}

func TestGMRESZeroRHS(t *testing.T) {
	a := laplacian1D(6)
	x := []float64{1, 1, 1, 1, 1, 1}
	if _, err := GMRES(a, x, make([]float64, 6), GMRESOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if Norm2(x) > 1e-6 {
		t.Fatalf("GMRES with zero RHS should drive x to 0, got %g", Norm2(x))
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		// SPD matrix: BᵀB + I.
		bm := randomDense(rng, n, n)
		a := Mul(bm.Transpose(), bm)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		f, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := randomVec(rng, n)
		rhs := make([]float64, n)
		a.MulVec(rhs, want)
		x := make([]float64, n)
		if err := f.Solve(x, rhs); err != nil {
			t.Fatal(err)
		}
		vecAlmostEq(t, x, want, 1e-8)
		// Log-determinant consistency with LU.
		lu, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f.LogDet()-math.Log(lu.Det())) > 1e-8*(1+math.Abs(f.LogDet())) {
			t.Fatalf("LogDet %g vs LU log-det %g", f.LogDet(), math.Log(lu.Det()))
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := FactorCholesky(a); err == nil {
		t.Fatal("indefinite matrix must be rejected")
	}
}

func TestMultigridVCycleConvergence(t *testing.T) {
	mg, err := NewMultigrid(31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	n2 := 31 * 31
	want := randomVec(rng, n2)
	rhs := make([]float64, n2)
	mg.Matrix().MulVec(rhs, want)
	x := make([]float64, n2)
	st, err := mg.Solve(x, rhs, 1e-9, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("multigrid did not converge")
	}
	vecAlmostEq(t, x, want, 1e-5)
	// Textbook multigrid: convergence in O(10) cycles, independent of n.
	if st.Iterations > 25 {
		t.Fatalf("V-cycles should converge fast, took %d", st.Iterations)
	}
}

func TestMultigridGridSizeIndependence(t *testing.T) {
	cycles := map[int]int{}
	for _, n := range []int{15, 31} {
		mg, err := NewMultigrid(n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(65))
		n2 := n * n
		want := randomVec(rng, n2)
		rhs := make([]float64, n2)
		mg.Matrix().MulVec(rhs, want)
		x := make([]float64, n2)
		st, err := mg.Solve(x, rhs, 1e-8, 60)
		if err != nil {
			t.Fatal(err)
		}
		cycles[n] = st.Iterations
	}
	// Mesh-independent convergence: cycle counts within a factor ~2.
	if cycles[31] > 2*cycles[15]+2 {
		t.Fatalf("V-cycle count should be mesh-independent: %v", cycles)
	}
}

func TestMultigridRejectsBadSize(t *testing.T) {
	if _, err := NewMultigrid(10); err == nil {
		t.Fatal("n must be 2^k − 1")
	}
	if _, err := NewMultigrid(0); err == nil {
		t.Fatal("n must be positive")
	}
}

func TestMultigridBeatsGaussSeidelSweeps(t *testing.T) {
	// The whole point: V-cycles converge orders of magnitude faster than
	// plain Gauss-Seidel on the same operator.
	n := 31
	mg, err := NewMultigrid(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(66))
	n2 := n * n
	want := randomVec(rng, n2)
	rhs := make([]float64, n2)
	mg.Matrix().MulVec(rhs, want)

	xmg := make([]float64, n2)
	stMG, err := mg.Solve(xmg, rhs, 1e-8, 60)
	if err != nil {
		t.Fatal(err)
	}
	xgs := make([]float64, n2)
	stGS, _ := SOR(mg.Matrix(), xgs, rhs, SOROptions{Omega: 1, Tol: 1e-8, MaxIter: 40})
	if stGS.Converged && stGS.Iterations <= stMG.Iterations {
		t.Fatalf("Gauss-Seidel should not beat multigrid here: GS %d sweeps vs MG %d cycles",
			stGS.Iterations, stMG.Iterations)
	}
}
