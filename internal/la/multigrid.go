// Numerical kernel file: the exact zero comparisons below are pivot,
// breakdown and structural-sparsity tests against values that are zero by
// assignment or would divide by zero — exactness is the point.
//pdevet:allow floateq pivot/breakdown/structural zero tests are exact by construction

package la

import (
	"fmt"
	"math"

	"hybridpde/internal/par"
)

// Multigrid is a geometric multigrid V-cycle solver for the 5-point Poisson
// operator on a square (2^k−1)×(2^k−1) interior grid. The group's earlier
// linear-algebra accelerator (the paper's refs [22, 23]) used exactly this
// decomposition — "digital decomposition using multigrid; analog solves
// recursively on linear equation residual" (Table 5) — so the substrate is
// part of the reproduced system family, and it doubles as an optimal
// preconditioner for the elliptic workloads of Table 1.
type Multigrid struct {
	levels []*mgLevel
	// PreSmooth and PostSmooth are the Gauss-Seidel sweep counts around
	// each coarse-grid correction. Defaults: 2 and 2.
	PreSmooth, PostSmooth int
	// Pool, when non-nil, fans each level's residual SpMV across the worker
	// pool; the smoothers stay serial (Gauss-Seidel sweeps are
	// order-dependent). Results are bit-identical at every pool size, nil
	// included.
	Pool *par.Pool
}

type mgLevel struct {
	n   int // interior nodes per side
	a   *CSR
	res []float64
	rhs []float64
	x   []float64
}

// poissonMatrix builds the 5-point −∇² operator with Dirichlet boundaries.
func poissonMatrix(n int) *CSR {
	b := NewCOO(n*n, n*n)
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := id(i, j)
			b.Append(r, r, 4)
			if i > 0 {
				b.Append(r, id(i-1, j), -1)
			}
			if i < n-1 {
				b.Append(r, id(i+1, j), -1)
			}
			if j > 0 {
				b.Append(r, id(i, j-1), -1)
			}
			if j < n-1 {
				b.Append(r, id(i, j+1), -1)
			}
		}
	}
	return b.ToCSR()
}

// NewMultigrid builds the level hierarchy for an n×n interior grid; n must
// be 2^k − 1 so that coarsening by 2 is exact.
func NewMultigrid(n int) (*Multigrid, error) {
	if n < 1 || (n+1)&n != 0 {
		return nil, fmt.Errorf("la: multigrid needs n = 2^k − 1 interior nodes, got %d", n)
	}
	mg := &Multigrid{PreSmooth: 2, PostSmooth: 2}
	for m := n; m >= 1; m = (m - 1) / 2 {
		mg.levels = append(mg.levels, &mgLevel{
			n:   m,
			a:   poissonMatrix(m),
			res: make([]float64, m*m),
			rhs: make([]float64, m*m),
			x:   make([]float64, m*m),
		})
		if m == 1 {
			break
		}
	}
	return mg, nil
}

// smooth runs Gauss-Seidel sweeps on lvl.a·x = rhs.
func (mg *Multigrid) smooth(lvl *mgLevel, x, rhs []float64, sweeps int) {
	n2 := lvl.n * lvl.n
	for s := 0; s < sweeps; s++ {
		for i := 0; i < n2; i++ {
			cols, vals := lvl.a.RowNNZ(i)
			acc := rhs[i]
			var diag float64
			for k, j := range cols {
				if j == i {
					diag = vals[k]
					continue
				}
				acc -= vals[k] * x[j]
			}
			x[i] = acc / diag
		}
	}
}

// restrictFullWeight maps a fine residual (nf×nf) onto the coarse grid
// (nc×nc, nc = (nf−1)/2) with full weighting.
func restrictFullWeight(fine []float64, nf int, coarse []float64, nc int) {
	at := func(i, j int) float64 {
		if i < 0 || i >= nf || j < 0 || j >= nf {
			return 0
		}
		return fine[i*nf+j]
	}
	for ci := 0; ci < nc; ci++ {
		for cj := 0; cj < nc; cj++ {
			fi, fj := 2*ci+1, 2*cj+1
			v := 0.25*at(fi, fj) +
				0.125*(at(fi-1, fj)+at(fi+1, fj)+at(fi, fj-1)+at(fi, fj+1)) +
				0.0625*(at(fi-1, fj-1)+at(fi-1, fj+1)+at(fi+1, fj-1)+at(fi+1, fj+1))
			coarse[ci*nc+cj] = 4 * v // scale for the unit-spacing operator
		}
	}
}

// prolongBilinear interpolates a coarse correction onto the fine grid and
// adds it to x.
func prolongBilinear(coarse []float64, nc int, x []float64, nf int) {
	at := func(i, j int) float64 {
		if i < 0 || i >= nc || j < 0 || j >= nc {
			return 0
		}
		return coarse[i*nc+j]
	}
	for fi := 0; fi < nf; fi++ {
		for fj := 0; fj < nf; fj++ {
			// Coarse coordinates of the fine node.
			ci := (fi - 1) / 2
			cj := (fj - 1) / 2
			// Bilinear weights over the 4 nearest coarse nodes (handles
			// all parities uniformly; off-grid coarse nodes read as 0,
			// the homogeneous Dirichlet boundary).
			var v float64
			for _, di := range []int{0, 1} {
				for _, dj := range []int{0, 1} {
					// coarse node (ci+di, cj+dj) sits at fine coords
					// (2(ci+di)+1, 2(cj+dj)+1).
					cfi := 2*(ci+di) + 1
					cfj := 2*(cj+dj) + 1
					wi := 1 - math.Abs(float64(fi-cfi))/2
					wj := 1 - math.Abs(float64(fj-cfj))/2
					if wi > 0 && wj > 0 {
						v += wi * wj * at(ci+di, cj+dj)
					}
				}
			}
			x[fi*nf+fj] += v
		}
	}
}

// VCycle performs one V-cycle on level 0 for A·x = rhs, updating x in
// place.
func (mg *Multigrid) VCycle(x, rhs []float64) error {
	return mg.vcycle(0, x, rhs)
}

func (mg *Multigrid) vcycle(level int, x, rhs []float64) error {
	lvl := mg.levels[level]
	if len(x) != lvl.n*lvl.n || len(rhs) != lvl.n*lvl.n {
		return fmt.Errorf("la: V-cycle level %d expects %d unknowns, got %d", level, lvl.n*lvl.n, len(x))
	}
	if level == len(mg.levels)-1 {
		// Coarsest grid: solve exactly (it is 1×1 for full hierarchies).
		mg.smooth(lvl, x, rhs, 50)
		return nil
	}
	mg.smooth(lvl, x, rhs, mg.PreSmooth)
	lvl.a.ResidualPar(mg.Pool, lvl.res, rhs, x)
	coarse := mg.levels[level+1]
	restrictFullWeight(lvl.res, lvl.n, coarse.rhs, coarse.n)
	Fill(coarse.x, 0)
	if err := mg.vcycle(level+1, coarse.x, coarse.rhs); err != nil {
		return err
	}
	prolongBilinear(coarse.x, coarse.n, x, lvl.n)
	mg.smooth(lvl, x, rhs, mg.PostSmooth)
	return nil
}

// Solve iterates V-cycles until the relative residual reaches tol.
func (mg *Multigrid) Solve(x, rhs []float64, tol float64, maxCycles int) (IterStats, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxCycles <= 0 {
		maxCycles = 60
	}
	lvl := mg.levels[0]
	bnorm := Norm2(rhs)
	if bnorm == 0 {
		bnorm = 1
	}
	var st IterStats
	for st.Iterations = 0; st.Iterations < maxCycles; st.Iterations++ {
		lvl.a.ResidualPar(mg.Pool, lvl.res, rhs, x)
		st.Residual = Norm2(lvl.res)
		if st.Residual <= tol*bnorm {
			st.Converged = true
			return st, nil
		}
		if err := mg.VCycle(x, rhs); err != nil {
			return st, err
		}
	}
	lvl.a.ResidualPar(mg.Pool, lvl.res, rhs, x)
	st.Residual = Norm2(lvl.res)
	st.Converged = st.Residual <= tol*bnorm
	if !st.Converged {
		return st, ErrNoConvergence
	}
	return st, nil
}

// Matrix exposes the finest-level operator (for tests and workloads).
func (mg *Multigrid) Matrix() *CSR { return mg.levels[0].a }
