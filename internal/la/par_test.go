package la_test

import (
	"math"
	"math/rand"
	"testing"

	"hybridpde/internal/la"
	"hybridpde/internal/par"
)

// randBanded builds a random diagonally dominant banded matrix; dominance
// keeps LU well-posed so bit-comparisons test determinism, not luck.
func randBanded(rng *rand.Rand, n, kl, ku int) *la.CSR {
	b := la.NewCOO(n, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := i - kl; j <= i+ku; j++ {
			if j < 0 || j >= n || j == i {
				continue
			}
			v := rng.NormFloat64()
			sum += math.Abs(v)
			b.Append(i, j, v)
		}
		b.Append(i, i, sum+1+rng.Float64())
	}
	return b.ToCSR()
}

func TestFactorBandLUIntoMatchesFactorBandLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 40, 200} {
		for _, kb := range [][2]int{{0, 0}, {1, 2}, {5, 5}, {9, 3}} {
			kl, ku := kb[0], kb[1]
			if kl >= n || ku >= n {
				continue
			}
			a := randBanded(rng, n, kl, ku)
			want, err := la.FactorBandLU(a)
			if err != nil {
				t.Fatalf("n=%d kl=%d ku=%d: FactorBandLU: %v", n, kl, ku, err)
			}
			var f la.BandLU
			if err := la.FactorBandLUInto(&f, a, kl, ku); err != nil {
				t.Fatalf("n=%d kl=%d ku=%d: FactorBandLUInto: %v", n, kl, ku, err)
			}
			if f.FactorOps != want.FactorOps {
				t.Fatalf("n=%d kl=%d ku=%d: FactorOps %d vs %d", n, kl, ku, f.FactorOps, want.FactorOps)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x1 := make([]float64, n)
			x2 := make([]float64, n)
			if err := want.Solve(x1, b); err != nil {
				t.Fatal(err)
			}
			if err := f.Solve(x2, b); err != nil {
				t.Fatal(err)
			}
			for i := range x1 {
				if x1[i] != x2[i] {
					t.Fatalf("n=%d kl=%d ku=%d: x[%d] = %x vs %x", n, kl, ku, i, x2[i], x1[i])
				}
			}
		}
	}
}

func TestFactorBandLUIntoReusesStorageAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var f la.BandLU
	big := randBanded(rng, 120, 6, 6)
	if err := la.FactorBandLUInto(&f, big, 6, 6); err != nil {
		t.Fatal(err)
	}
	// A narrower matrix must reshape, not grow; repeated same-shape factors
	// must be alloc-free.
	small := randBanded(rng, 80, 3, 3)
	if err := la.FactorBandLUInto(&f, small, 3, 3); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := la.FactorBandLUInto(&f, small, 3, 3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm FactorBandLUInto allocates %v per call, want 0", allocs)
	}
}

// TestBandLUParallelBitIdentical is the band-LU determinism contract: the
// factorization (solutions and FactorOps alike) must produce identical bits
// at every pool size, including against the no-pool serial path.
func TestBandLUParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sz := range [][3]int{{60, 4, 4}, {128, 17, 17}, {200, 33, 12}} {
		n, kl, ku := sz[0], sz[1], sz[2]
		a := randBanded(rng, n, kl, ku)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		serial, err := la.FactorBandLU(a)
		if err != nil {
			t.Fatal(err)
		}
		xWant := make([]float64, n)
		if err := serial.Solve(xWant, b); err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{1, 2, 3, 8} {
			p := par.NewPool(procs)
			var f la.BandLU
			f.SetPool(p)
			if err := la.FactorBandLUInto(&f, a, kl, ku); err != nil {
				t.Fatalf("procs=%d: %v", procs, err)
			}
			if f.FactorOps != serial.FactorOps {
				t.Fatalf("n=%d procs=%d: FactorOps %d vs serial %d", n, procs, f.FactorOps, serial.FactorOps)
			}
			x := make([]float64, n)
			if err := f.Solve(x, b); err != nil {
				t.Fatalf("procs=%d: %v", procs, err)
			}
			for i := range x {
				if x[i] != xWant[i] {
					t.Fatalf("n=%d procs=%d: x[%d] = %x, serial %x", n, procs, i, x[i], xWant[i])
				}
			}
			p.Close()
		}
	}
}

func TestMulVecParMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 17, 400, 3000} {
		a := randBanded(rng, n, min(n-1, 3), min(n-1, 5))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		a.MulVec(want, x)
		for _, procs := range []int{1, 2, 8} {
			p := par.NewPool(procs)
			got := make([]float64, n)
			a.MulVecPar(p, got, x)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d procs=%d: dst[%d] = %x, want %x", n, procs, i, got[i], want[i])
				}
			}
			p.Close()
		}
		var nilPool *par.Pool
		got := make([]float64, n)
		a.MulVecPar(nilPool, got, x)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d nil pool: dst[%d] differs", n, i)
			}
		}
	}
}

func TestResidualParMatchesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 513
	a := randBanded(rng, n, 4, 4)
	x := make([]float64, n)
	b := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	a.Residual(want, b, x)
	for _, procs := range []int{1, 3, 8} {
		p := par.NewPool(procs)
		got := make([]float64, n)
		a.ResidualPar(p, got, b, x)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("procs=%d: res[%d] = %x, want %x", procs, i, got[i], want[i])
			}
		}
		p.Close()
	}
}

// TestParDotPoolSizeInvariant checks the fixed-block reduction's defining
// property: identical bits at every pool size (the block layout depends only
// on the vector length).
func TestParDotPoolSizeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 100, la.ReduceBlock, la.ReduceBlock + 1, 5*la.ReduceBlock + 37} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		partials := make([]float64, la.NumReduceBlocks(n))
		var nilPool *par.Pool
		want := la.ParDot(nilPool, x, y, partials)
		wantN := la.ParNorm2(nilPool, x, partials)
		for _, procs := range []int{1, 2, 5, 8} {
			p := par.NewPool(procs)
			if got := la.ParDot(p, x, y, partials); got != want {
				t.Fatalf("n=%d procs=%d: ParDot %x, want %x", n, procs, got, want)
			}
			if got := la.ParNorm2(p, x, partials); got != wantN {
				t.Fatalf("n=%d procs=%d: ParNorm2 %x, want %x", n, procs, got, wantN)
			}
			p.Close()
		}
		// Sanity against the linear reference within rounding.
		ref := la.Dot(x, y)
		if math.Abs(want-ref) > 1e-9*(1+math.Abs(ref)) {
			t.Fatalf("n=%d: blocked dot %v too far from linear %v", n, want, ref)
		}
	}
}

func TestGMRESPoolDeterministicAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 300
	a := randBanded(rng, n, 3, 3)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var want []float64
	for _, procs := range []int{1, 2, 8} {
		p := par.NewPool(procs)
		x := make([]float64, n)
		st, err := la.GMRES(a, x, b, la.GMRESOptions{Tol: 1e-12, Pool: p})
		if err != nil {
			t.Fatalf("procs=%d: %v (residual %g)", procs, err, st.Residual)
		}
		p.Close()
		if want == nil {
			want = x
			continue
		}
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("procs=%d: x[%d] = %x, want %x", procs, i, x[i], want[i])
			}
		}
	}
}

func TestMultigridPoolMatchesSerial(t *testing.T) {
	n := 31
	rng := rand.New(rand.NewSource(14))
	rhs := make([]float64, n*n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	solve := func(p *par.Pool) []float64 {
		mg, err := la.NewMultigrid(n)
		if err != nil {
			t.Fatal(err)
		}
		mg.Pool = p
		x := make([]float64, n*n)
		if _, err := mg.Solve(x, rhs, 1e-10, 60); err != nil {
			t.Fatal(err)
		}
		return x
	}
	want := solve(nil)
	for _, procs := range []int{2, 8} {
		p := par.NewPool(procs)
		got := solve(p)
		p.Close()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("procs=%d: x[%d] = %x, want %x", procs, i, got[i], want[i])
			}
		}
	}
}

func TestToCSRScratchReuseAndSortFastPath(t *testing.T) {
	// Unsorted duplicate-heavy input must still dedup correctly through the
	// fast-path check.
	c := la.NewCOO(3, 3)
	c.Append(1, 2, 1)
	c.Append(1, 0, 2)
	c.Append(1, 2, 3) // duplicate of (1,2)
	c.Append(0, 0, 5)
	c.Append(2, 2, 7)
	m := c.ToCSR()
	if got := m.At(1, 2); got != 4 {
		t.Fatalf("dedup sum At(1,2) = %v, want 4", got)
	}
	if got := m.NNZ(); got != 4 {
		t.Fatalf("NNZ = %d, want 4", got)
	}
	// Sorted input exercises the clean early-return; values must survive.
	c2 := la.NewCOO(2, 2)
	c2.Append(0, 0, 1)
	c2.Append(0, 1, 2)
	c2.Append(1, 1, 3)
	m2 := c2.ToCSR()
	if m2.At(0, 1) != 2 || m2.At(1, 1) != 3 || m2.NNZ() != 3 {
		t.Fatalf("clean path corrupted matrix: %v %v nnz=%d", m2.At(0, 1), m2.At(1, 1), m2.NNZ())
	}
	// Converting the same builder repeatedly (the next-scratch reuse path)
	// must produce independent, correct matrices each time.
	builder := la.NewCOO(4, 4)
	builder.Append(2, 1, 9)
	builder.Append(0, 3, 4)
	first := builder.ToCSR()
	builder.Append(1, 1, 6)
	second := builder.ToCSR()
	if first.NNZ() != 2 || first.At(2, 1) != 9 || first.At(0, 3) != 4 {
		t.Fatalf("first conversion wrong: nnz=%d", first.NNZ())
	}
	if second.NNZ() != 3 || second.At(1, 1) != 6 || second.At(2, 1) != 9 {
		t.Fatalf("second conversion wrong: nnz=%d", second.NNZ())
	}
}

func TestZeroRowsValues(t *testing.T) {
	c := la.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Append(i, i, float64(i+1))
	}
	m := c.ToCSR()
	m.ZeroRowsValues(1, 3)
	wants := []float64{1, 0, 0, 4}
	for i, w := range wants {
		if got := m.At(i, i); got != w {
			t.Fatalf("At(%d,%d) = %v, want %v", i, i, got, w)
		}
	}
}
