package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func vecAlmostEq(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if !almostEq(got[i], want[i], tol) {
			t.Fatalf("element %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randomWellConditioned makes a diagonally dominant random matrix, which is
// guaranteed nonsingular.
func randomWellConditioned(rng *rand.Rand, n int) *Dense {
	m := randomDense(rng, n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			rowSum += math.Abs(m.At(i, j))
		}
		m.Set(i, i, rowSum+1)
	}
	return m
}

func TestDenseBasicOps(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At returned wrong values: %v", m)
	}
	m.Add(0, 0, 5)
	if m.At(0, 0) != 6 {
		t.Fatalf("Add failed: got %g", m.At(0, 0))
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero did not clear the matrix")
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	vecAlmostEq(t, dst, []float64{6, 15}, 1e-15)
}

func TestDenseMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 5, 5)
	got := Mul(a, Identity(5))
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if got.At(i, j) != a.At(i, j) {
				t.Fatalf("A·I ≠ A at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 4, 7)
	tt := a.Transpose().Transpose()
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			if tt.At(i, j) != a.At(i, j) {
				t.Fatal("transpose twice is not the identity")
			}
		}
	}
}

func TestNorm2AgainstNaive(t *testing.T) {
	x := []float64{3, 4}
	if !almostEq(Norm2(x), 5, 1e-15) {
		t.Fatalf("Norm2([3,4]) = %g, want 5", Norm2(x))
	}
	// Large values must not overflow.
	big := []float64{1e200, 1e200}
	if math.IsInf(Norm2(big), 0) {
		t.Fatal("Norm2 overflowed on large inputs")
	}
}

func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		// Keep products finite: overflow to ±Inf makes the sum
		// order-dependent, which is not the property under test.
		for i := range a {
			a[i] = math.Mod(a[i], 1e100)
			b[i] = math.Mod(b[i], 1e100)
			if math.IsNaN(a[i]) {
				a[i] = 0
			}
			if math.IsNaN(b[i]) {
				b[i] = 0
			}
		}
		return Dot(a[:], b[:]) == Dot(b[:], a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2NonNegativeProperty(t *testing.T) {
	f := func(a [12]float64) bool {
		for i, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				a[i] = 0
			}
		}
		return Norm2(a[:]) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				a[i] = 1
			}
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				b[i] = 1
			}
			// Keep magnitudes sane so the inequality is testable in floats.
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
		}
		sum := make([]float64, 6)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		return Norm2(sum) <= Norm2(a[:])+Norm2(b[:])+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	vecAlmostEq(t, y, []float64{3, 4, 5}, 1e-15)
}

func TestSubFill(t *testing.T) {
	dst := make([]float64, 3)
	Sub(dst, []float64{5, 5, 5}, []float64{1, 2, 3})
	vecAlmostEq(t, dst, []float64{4, 3, 2}, 1e-15)
	Fill(dst, 7)
	vecAlmostEq(t, dst, []float64{7, 7, 7}, 1e-15)
}

func TestDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	m := NewDense(2, 2)
	m.MulVec(make([]float64, 3), make([]float64, 2))
}
