// Numerical kernel file: the exact zero comparisons below are pivot,
// breakdown and structural-sparsity tests against values that are zero by
// assignment or would divide by zero — exactness is the point.
//pdevet:allow floateq pivot/breakdown/structural zero tests are exact by construction

package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("la: iterative solver did not converge")

// ErrBreakdown is returned when an iterative recurrence degenerates (for
// example rho ≈ 0 in BiCGSTAB).
var ErrBreakdown = errors.New("la: iterative solver breakdown")

// IterStats reports what an iterative solve did, so the performance models
// and Table 1 profiles can account for work performed.
type IterStats struct {
	Iterations int     // outer iterations executed
	Residual   float64 // final ‖b − A·x‖₂
	Converged  bool
}

// Preconditioner applies M⁻¹ to a vector: dst = M⁻¹·r.
type Preconditioner interface {
	Apply(dst, r []float64)
}

// IdentityPreconditioner is the no-op preconditioner.
type IdentityPreconditioner struct{}

// Apply copies r into dst.
func (IdentityPreconditioner) Apply(dst, r []float64) { copy(dst, r) }

// JacobiPreconditioner scales by the inverse diagonal of A.
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner for a. Zero diagonal entries are
// treated as 1 so the preconditioner stays well-defined.
func NewJacobi(a *CSR) *JacobiPreconditioner {
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 1
		} else {
			inv[i] = 1 / v
		}
	}
	return &JacobiPreconditioner{invDiag: inv}
}

// Apply computes dst = D⁻¹·r.
func (p *JacobiPreconditioner) Apply(dst, r []float64) {
	for i, v := range r {
		dst[i] = v * p.invDiag[i]
	}
}

// CGOptions configures the conjugate-gradient family of solvers.
type CGOptions struct {
	Tol     float64        // relative residual target; default 1e-10
	MaxIter int            // default 10·n
	M       Preconditioner // default identity
}

func (o *CGOptions) defaults(n int) {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
	}
	if o.M == nil {
		o.M = IdentityPreconditioner{}
	}
}

// CG solves the symmetric positive-definite system A·x = b by (optionally
// preconditioned) conjugate gradients, starting from the contents of x.
// This is the dominant kernel of the OpenFOAM-style workloads in Table 1.
func CG(a *CSR, x, b []float64, opts CGOptions) (IterStats, error) {
	n := len(b)
	if a.Rows() != n || a.Cols() != n || len(x) != n {
		return IterStats{}, fmt.Errorf("la: CG dimension mismatch")
	}
	opts.defaults(n)
	r := make([]float64, n)
	a.Residual(r, b, x)
	z := make([]float64, n)
	opts.M.Apply(z, r)
	p := Copy(z)
	ap := make([]float64, n)
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rz := Dot(r, z)
	var st IterStats
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		res := Norm2(r)
		st.Residual = res
		if res <= opts.Tol*bnorm {
			st.Converged = true
			return st, nil
		}
		a.MulVec(ap, p)
		pap := Dot(p, ap)
		if pap == 0 {
			return st, ErrBreakdown
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		opts.M.Apply(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	st.Residual = Norm2(r)
	st.Converged = st.Residual <= opts.Tol*bnorm
	if !st.Converged {
		return st, ErrNoConvergence
	}
	return st, nil
}

// BiCGSTAB solves the general (possibly nonsymmetric) system A·x = b by the
// stabilised bi-conjugate gradient method, the dominant kernel of the
// bwaves-style fluid workload in Table 1.
func BiCGSTAB(a *CSR, x, b []float64, opts CGOptions) (IterStats, error) {
	n := len(b)
	if a.Rows() != n || a.Cols() != n || len(x) != n {
		return IterStats{}, fmt.Errorf("la: BiCGSTAB dimension mismatch")
	}
	opts.defaults(n)
	r := make([]float64, n)
	a.Residual(r, b, x)
	rhat := Copy(r)
	v := make([]float64, n)
	p := make([]float64, n)
	phat := make([]float64, n)
	shat := make([]float64, n)
	t := make([]float64, n)
	rho, alpha, omega := 1.0, 1.0, 1.0
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	var st IterStats
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		res := Norm2(r)
		st.Residual = res
		if res <= opts.Tol*bnorm {
			st.Converged = true
			return st, nil
		}
		rhoNew := Dot(rhat, r)
		if rhoNew == 0 {
			return st, ErrBreakdown
		}
		if st.Iterations == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		opts.M.Apply(phat, p)
		a.MulVec(v, phat)
		d := Dot(rhat, v)
		if d == 0 {
			return st, ErrBreakdown
		}
		alpha = rho / d
		s := make([]float64, n)
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if Norm2(s) <= opts.Tol*bnorm {
			Axpy(alpha, phat, x)
			copy(r, s)
			st.Residual = Norm2(r)
			st.Converged = true
			st.Iterations++
			return st, nil
		}
		opts.M.Apply(shat, s)
		a.MulVec(t, shat)
		tt := Dot(t, t)
		if tt == 0 {
			return st, ErrBreakdown
		}
		omega = Dot(t, s) / tt
		if omega == 0 {
			return st, ErrBreakdown
		}
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
	}
	st.Residual = Norm2(r)
	st.Converged = st.Residual <= opts.Tol*bnorm
	if !st.Converged {
		return st, ErrNoConvergence
	}
	return st, nil
}

// SOROptions configures stationary sweeps.
type SOROptions struct {
	Omega   float64 // relaxation factor in (0,2); 1 gives Gauss-Seidel
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 100·n
}

// SOR performs successive over-relaxation sweeps on A·x = b until the
// relative residual reaches Tol. With Omega == 1 this is Gauss-Seidel.
// Rows must have nonzero diagonal entries.
func SOR(a *CSR, x, b []float64, opts SOROptions) (IterStats, error) {
	n := len(b)
	if a.Rows() != n || a.Cols() != n || len(x) != n {
		return IterStats{}, fmt.Errorf("la: SOR dimension mismatch")
	}
	if opts.Omega <= 0 || opts.Omega >= 2 {
		opts.Omega = 1
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100 * n
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	r := make([]float64, n)
	var st IterStats
	for st.Iterations = 0; st.Iterations < opts.MaxIter; st.Iterations++ {
		a.Residual(r, b, x)
		st.Residual = Norm2(r)
		if st.Residual <= opts.Tol*bnorm {
			st.Converged = true
			return st, nil
		}
		for i := 0; i < n; i++ {
			cols, vals := a.RowNNZ(i)
			s := b[i]
			diag := 0.0
			for k, j := range cols {
				if j == i {
					diag = vals[k]
					continue
				}
				s -= vals[k] * x[j]
			}
			if diag == 0 {
				return st, ErrSingular
			}
			x[i] = (1-opts.Omega)*x[i] + opts.Omega*s/diag
		}
	}
	a.Residual(r, b, x)
	st.Residual = Norm2(r)
	st.Converged = st.Residual <= opts.Tol*bnorm
	if !st.Converged {
		return st, ErrNoConvergence
	}
	return st, nil
}

// ILU0 is an incomplete LU factorization with zero fill, usable as a
// preconditioner for CG (on SPD systems use IC-like behaviour) and BiCGSTAB.
type ILU0 struct {
	lu *CSR
}

// NewILU0 computes the ILU(0) factorization of a. The factor shares a's
// sparsity pattern; a is not modified.
func NewILU0(a *CSR) (*ILU0, error) {
	lu := a.Clone()
	n := lu.Rows()
	for i := 0; i < n; i++ {
		cols, vals := lu.RowNNZ(i)
		for ki, k := range cols {
			if k >= i {
				break
			}
			dkk := lu.At(k, k)
			if dkk == 0 {
				return nil, ErrSingular
			}
			m := vals[ki] / dkk
			vals[ki] = m
			// Subtract m × row k from row i, but only on i's pattern.
			kcols, kvals := lu.RowNNZ(k)
			for kj, j := range kcols {
				if j <= k {
					continue
				}
				// Find j in row i's pattern at position > ki.
				for t := ki + 1; t < len(cols); t++ {
					if cols[t] == j {
						vals[t] -= m * kvals[kj]
						break
					}
					if cols[t] > j {
						break
					}
				}
			}
		}
	}
	return &ILU0{lu: lu}, nil
}

// Apply solves (L·U)·dst = r with the incomplete factors.
func (p *ILU0) Apply(dst, r []float64) {
	n := p.lu.Rows()
	// Forward: L has unit diagonal.
	for i := 0; i < n; i++ {
		cols, vals := p.lu.RowNNZ(i)
		s := r[i]
		for k, j := range cols {
			if j >= i {
				break
			}
			s -= vals[k] * dst[j]
		}
		dst[i] = s
	}
	// Backward with U.
	for i := n - 1; i >= 0; i-- {
		cols, vals := p.lu.RowNNZ(i)
		s := dst[i]
		diag := 0.0
		for k := len(cols) - 1; k >= 0; k-- {
			j := cols[k]
			if j < i {
				break
			}
			if j == i {
				diag = vals[k]
				continue
			}
			s -= vals[k] * dst[j]
		}
		if diag == 0 {
			diag = 1
		}
		dst[i] = s / diag
	}
}

// SpectralRadiusEstimate runs a few power iterations to estimate |λ|max of a,
// used in tests and in the PDE character report (Table 2).
func SpectralRadiusEstimate(a *CSR, iters int) float64 {
	n := a.Rows()
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		a.MulVec(w, v)
		nw := Norm2(w)
		if nw == 0 {
			return 0
		}
		lambda = nw
		for i := range v {
			v[i] = w[i] / nw
		}
	}
	return lambda
}
