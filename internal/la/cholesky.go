package la

import (
	"fmt"
	"math"
)

// Cholesky is the LLᵀ factorization of a symmetric positive-definite dense
// matrix — the natural factorization for the normal-equation systems the
// analog quotient loop's fixed point corresponds to, and for the SPD
// stencil matrices of the elliptic workloads.
type Cholesky struct {
	n int
	l *Dense
}

// ErrNotSPD is returned when the matrix is not (numerically) symmetric
// positive definite.
var ErrNotSPD = fmt.Errorf("la: matrix is not positive definite: %w", ErrSingular)

// FactorCholesky computes the lower-triangular factor of a. Only the lower
// triangle of a is read; a is not modified.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("la: Cholesky of non-square %d×%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	f := &Cholesky{n: n, l: NewDense(n, n)}
	l := f.l
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return f, nil
}

// Solve solves A·x = b into dst. dst and b may alias.
func (f *Cholesky) Solve(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("la: Cholesky solve length mismatch")
	}
	l := f.l
	y := Copy(b)
	// Forward: L·y = b.
	for i := 0; i < f.n; i++ {
		s := y[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < f.n; k++ {
			s -= l.At(k, i) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	copy(dst, y)
	return nil
}

// LogDet returns log(det A) = 2·Σ log L_ii, useful for diagnostics.
func (f *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < f.n; i++ {
		s += math.Log(f.l.At(i, i))
	}
	return 2 * s
}
