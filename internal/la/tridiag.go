// Numerical kernel file: the exact zero comparisons below are pivot,
// breakdown and structural-sparsity tests against values that are zero by
// assignment or would divide by zero — exactness is the point.
//pdevet:allow floateq pivot/breakdown/structural zero tests are exact by construction

package la

import "fmt"

// SolveTridiagonal solves the tridiagonal system with sub-diagonal a,
// diagonal b and super-diagonal c by the Thomas algorithm with partial
// stability safeguard (falls back to ErrSingular on vanishing pivots).
// a[0] and c[n−1] are ignored. The solution is written into dst; rhs is
// not modified. O(n) — the natural kernel for 1-D PDE steps.
func SolveTridiagonal(dst, a, b, c, rhs []float64) error {
	n := len(b)
	if len(a) != n || len(c) != n || len(rhs) != n || len(dst) != n {
		return fmt.Errorf("la: tridiagonal length mismatch")
	}
	if n == 0 {
		return nil
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return ErrSingular
	}
	cp[0] = c[0] / b[0]
	dp[0] = rhs[0] / b[0]
	for i := 1; i < n; i++ {
		m := b[i] - a[i]*cp[i-1]
		if m == 0 {
			return ErrSingular
		}
		cp[i] = c[i] / m
		dp[i] = (rhs[i] - a[i]*dp[i-1]) / m
	}
	dst[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		dst[i] = dp[i] - cp[i]*dst[i+1]
	}
	return nil
}
