package la

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBandwidths(t *testing.T) {
	a := laplacian1D(6)
	kl, ku := Bandwidths(a)
	if kl != 1 || ku != 1 {
		t.Fatalf("bandwidths = (%d,%d), want (1,1)", kl, ku)
	}
	b := laplacian2D(4, 4)
	kl, ku = Bandwidths(b)
	if kl != 4 || ku != 4 {
		t.Fatalf("2-D bandwidths = (%d,%d), want (4,4)", kl, ku)
	}
}

func TestBandLUTridiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := laplacian1D(40)
	want := randomVec(rng, 40)
	b := make([]float64, 40)
	a.MulVec(b, want)
	x, _, err := SolveSparse(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, want, 1e-10)
}

func TestBandLUMatchesDenseLU(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(25)
		kl := 1 + rng.Intn(3)
		ku := 1 + rng.Intn(3)
		bld := NewCOO(n, n)
		dn := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := max(0, i-kl); j <= min(n-1, i+ku); j++ {
				v := rng.NormFloat64()
				if i == j {
					v += float64(kl+ku) + 2 // diagonally dominant
				}
				bld.Append(i, j, v)
				dn.Set(i, j, v)
			}
		}
		a := bld.ToCSR()
		rhs := randomVec(rng, n)
		xBand, _, err := SolveSparse(a, rhs)
		if err != nil {
			t.Fatalf("trial %d band: %v", trial, err)
		}
		xDense, err := SolveDense(dn, rhs)
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		vecAlmostEq(t, xBand, xDense, 1e-9)
	}
}

func TestBandLUNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row interchange.
	bld := NewCOO(3, 3)
	bld.Append(0, 0, 0)
	bld.Append(0, 1, 1)
	bld.Append(1, 0, 1)
	bld.Append(1, 1, 1)
	bld.Append(1, 2, 1)
	bld.Append(2, 1, 1)
	bld.Append(2, 2, 2)
	a := bld.ToCSR()
	want := []float64{1, 2, 3}
	b := make([]float64, 3)
	a.MulVec(b, want)
	x, _, err := SolveSparse(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, want, 1e-12)
}

func TestBandLUSingular(t *testing.T) {
	bld := NewCOO(2, 2)
	bld.Append(0, 0, 1)
	bld.Append(0, 1, 2)
	bld.Append(1, 0, 2)
	bld.Append(1, 1, 4)
	_, _, err := SolveSparse(bld.ToCSR(), []float64{1, 2})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestBandLUPoisson2D(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := laplacian2D(12, 12)
	want := randomVec(rng, 144)
	b := make([]float64, 144)
	a.MulVec(b, want)
	x, f, err := SolveSparse(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, want, 1e-9)
	if f.FactorOps <= 0 {
		t.Fatal("FactorOps should count elimination work")
	}
}

func TestFactorNormalFromMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(20)
		// Random banded matrix, possibly singular — normal equations must
		// still factor thanks to the εI shift.
		bld := NewCOO(n, n)
		dn := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := max(0, i-2); j <= min(n-1, i+1); j++ {
				v := rng.NormFloat64()
				bld.Append(i, j, v)
				dn.Set(i, j, v)
			}
		}
		a := bld.ToCSR()
		const eps = 1e-3
		ws := NewBandLUWorkspace(n, 3, 3)
		if err := ws.FactorNormalFrom(a, eps); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Dense reference: (AᵀA + εI)·x = Aᵀ·g.
		at := dn.Transpose()
		ata := Mul(at, dn)
		for i := 0; i < n; i++ {
			ata.Add(i, i, eps)
		}
		g := randomVec(rng, n)
		atg := make([]float64, n)
		a.MulTransVec(atg, g)
		// Cross-check MulTransVec against the dense transpose.
		atgDense := make([]float64, n)
		at.MulVec(atgDense, g)
		vecAlmostEq(t, atg, atgDense, 1e-12)

		want, err := SolveDense(ata, atg)
		if err != nil {
			t.Fatal(err)
		}
		got := Copy(atg)
		if err := ws.SolveInto(got); err != nil {
			t.Fatal(err)
		}
		vecAlmostEq(t, got, want, 1e-8)
	}
}

func TestFactorNormalFromSingularMatrix(t *testing.T) {
	// An exactly singular matrix: the shifted normal equations still
	// factor and the solve direction vanishes along the null space input.
	bld := NewCOO(2, 2)
	bld.Append(0, 0, 1)
	bld.Append(0, 1, 1)
	bld.Append(1, 0, 1)
	bld.Append(1, 1, 1)
	a := bld.ToCSR()
	ws := NewBandLUWorkspace(2, 2, 2)
	if err := ws.FactorNormalFrom(a, 1e-3); err != nil {
		t.Fatalf("shifted normal equations must factor a singular matrix: %v", err)
	}
}

func TestBandWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a1 := laplacian1D(10)
	ws := NewBandLUWorkspace(10, 1, 1)
	if err := ws.FactorFrom(a1); err != nil {
		t.Fatal(err)
	}
	want := randomVec(rng, 10)
	b := make([]float64, 10)
	a1.MulVec(b, want)
	x := make([]float64, 10)
	if err := ws.Solve(x, b); err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, want, 1e-10)
	// Refactor different values in the same workspace.
	a2 := a1.Clone()
	a2.Scale(2)
	if err := ws.FactorFrom(a2); err != nil {
		t.Fatal(err)
	}
	a2.MulVec(b, want)
	if err := ws.Solve(x, b); err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, want, 1e-10)
}
