// Parallel vector and SpMV kernels built on internal/par. Two determinism
// mechanisms are used, per DESIGN.md §11:
//
//   - disjoint-write partitioning (MulVecPar, ResidualPar): each output row
//     is computed start-to-finish by exactly one chunk, in the same
//     left-to-right column order as the serial kernel, so results are
//     bitwise identical to MulVec/Residual at every pool size;
//   - fixed-block reductions (ParDot, ParNorm2): the vector is cut into
//     ReduceBlock-sized blocks whose partial sums are computed independently
//     and folded serially in block order. The block layout depends only on
//     the vector length — never on the worker count — so results are
//     bit-identical at any pool size, though they differ in final-bit
//     rounding from the linear-accumulation Dot/Norm2.
package la

import (
	"fmt"
	"math"

	"hybridpde/internal/par"
)

// ReduceBlock is the fixed block length of the deterministic reductions.
// 2048 multiply-adds comfortably amortise one dispatch while keeping enough
// blocks for load balance on the grid sizes the solvers see.
const ReduceBlock = 2048

// NumReduceBlocks returns how many fixed reduction blocks a length-n vector
// spans — the minimum partials-buffer length for ParDot/ParNorm2.
func NumReduceBlocks(n int) int {
	return (n + ReduceBlock - 1) / ReduceBlock
}

// dotRun computes per-block partial dot products; index b of the partitioned
// range is reduction block b.
type dotRun struct {
	x, y     []float64
	partials []float64
}

func (r *dotRun) Run(_, lo, hi int) {
	for b := lo; b < hi; b++ {
		end := (b + 1) * ReduceBlock
		if end > len(r.x) {
			end = len(r.x)
		}
		s := 0.0
		for i := b * ReduceBlock; i < end; i++ {
			s += r.x[i] * r.y[i]
		}
		r.partials[b] = s
	}
}

// ParDot computes the fixed-block inner product of x and y on pool p,
// writing per-block partial sums into partials (length ≥
// NumReduceBlocks(len(x))) and folding them serially in block order. The
// result is a function of the inputs alone — identical bits at every pool
// size, nil pool included.
func ParDot(p *par.Pool, x, y, partials []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: ParDot length mismatch: %d vs %d", len(x), len(y)))
	}
	nb := NumReduceBlocks(len(x))
	r := dotRun{x: x, y: y, partials: partials}
	p.Run(nb, 1, &r)
	s := 0.0
	for b := 0; b < nb; b++ {
		s += partials[b]
	}
	return s
}

// ssqRun computes per-block partial sums of squares.
type ssqRun struct {
	x        []float64
	partials []float64
}

func (r *ssqRun) Run(_, lo, hi int) {
	for b := lo; b < hi; b++ {
		end := (b + 1) * ReduceBlock
		if end > len(r.x) {
			end = len(r.x)
		}
		s := 0.0
		for i := b * ReduceBlock; i < end; i++ {
			s += r.x[i] * r.x[i]
		}
		r.partials[b] = s
	}
}

// ParNorm2 computes the Euclidean norm of x by fixed-block sum of squares on
// pool p (partials as in ParDot). Unlike Norm2 it does not rescale, so it
// can overflow for |x|ᵢ near √MaxFloat64 — fine for the normalised Krylov
// vectors it serves; the payoff is pool-size-independent bits.
func ParNorm2(p *par.Pool, x, partials []float64) float64 {
	nb := NumReduceBlocks(len(x))
	r := ssqRun{x: x, partials: partials}
	p.Run(nb, 1, &r)
	s := 0.0
	for b := 0; b < nb; b++ {
		s += partials[b]
	}
	return math.Sqrt(s)
}

// mulVecRun fans SpMV rows across chunks: each dst row is written by exactly
// one chunk with the serial kernel's accumulation order.
type mulVecRun struct {
	m      *CSR
	dst, x []float64
}

func (r *mulVecRun) Run(_, lo, hi int) {
	r.m.mulVecRows(r.dst, r.x, lo, hi)
}

// mulVecRows is the serial SpMV inner loop over rows [lo, hi).
func (m *CSR) mulVecRows(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
}

// spmvGrain returns the minimum rows per SpMV chunk so a chunk carries
// ~ReduceBlock multiply-adds.
func (m *CSR) spmvGrain() int {
	nnz := len(m.vals)
	if nnz == 0 || m.rows == 0 {
		return 1
	}
	g := ReduceBlock * m.rows / nnz
	if g < 1 {
		g = 1
	}
	return g
}

// MulVecPar computes dst = M·x with the row loop fanned out across p.
// Bit-identical to MulVec at every pool size (nil included): rows are
// disjoint writes and each keeps its serial accumulation order.
func (m *CSR) MulVecPar(p *par.Pool, dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("la: CSR MulVecPar mismatch: %d×%d by %d into %d", m.rows, m.cols, len(x), len(dst)))
	}
	if p.Procs() <= 1 {
		m.mulVecRows(dst, x, 0, m.rows)
		return
	}
	r := mulVecRun{m: m, dst: dst, x: x}
	p.Run(m.rows, m.spmvGrain(), &r)
}

// residualRun fuses dst[i] = b[i] − (M·x)[i] per row chunk.
type residualRun struct {
	m         *CSR
	dst, b, x []float64
}

func (r *residualRun) Run(_, lo, hi int) {
	r.m.residualRows(r.dst, r.b, r.x, lo, hi)
}

func (m *CSR) residualRows(dst, b, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[i] = b[i] - s
	}
}

// ResidualPar computes dst = b − M·x with rows fanned out across p. The
// fused subtraction performs the same b[i]−s operation Residual's second
// pass does, so results are bit-identical to Residual at every pool size.
func (m *CSR) ResidualPar(p *par.Pool, dst, b, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows || len(b) != m.rows {
		panic(fmt.Sprintf("la: CSR ResidualPar mismatch: %d×%d by %d into %d/%d", m.rows, m.cols, len(x), len(dst), len(b)))
	}
	if p.Procs() <= 1 {
		m.residualRows(dst, b, x, 0, m.rows)
		return
	}
	r := residualRun{m: m, dst: dst, b: b, x: x}
	p.Run(m.rows, m.spmvGrain(), &r)
}
