// Numerical kernel file: the exact zero comparisons below are pivot,
// breakdown and structural-sparsity tests against values that are zero by
// assignment or would divide by zero — exactness is the point.
//pdevet:allow floateq pivot/breakdown/structural zero tests are exact by construction

package la

import (
	"fmt"
	"math"
)

// QR is a Householder QR factorization A = Q·R of an m×n matrix with m ≥ n.
// It is the dense stand-in for the sparse QR kernel the paper offloads to
// cuSolver on the GPU baseline; the hybrid solver uses it for least-squares
// steps and as a robust alternative to LU on ill-conditioned Jacobians.
type QR struct {
	m, n int
	qr   *Dense    // Householder vectors below diagonal, R on and above
	tau  []float64 // Householder coefficients
}

// FactorQR computes the QR factorization of a (m ≥ n). a is not modified.
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("la: QR requires rows ≥ cols, got %d×%d", m, n)
	}
	f := &QR{m: m, n: n, qr: a.Clone(), tau: make([]float64, n)}
	qr := f.qr
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			f.tau[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Add(k, k, 1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Add(i, j, s*qr.At(i, k))
			}
		}
		// R(k,k) = −norm; the column below holds the scaled reflector.
		f.tau[k] = norm
	}
	return f, nil
}

// rDiag returns R(k,k), which FactorQR stashed in tau.
func (f *QR) rDiag(k int) float64 { return -f.tau[k] }

// Solve solves the least-squares problem min ‖A·x − b‖₂, writing the n-vector
// solution into dst. For square nonsingular A this is the exact solve.
func (f *QR) Solve(dst, b []float64) error {
	if len(b) != f.m || len(dst) != f.n {
		return fmt.Errorf("la: QR solve length mismatch: m=%d n=%d len(b)=%d len(dst)=%d", f.m, f.n, len(b), len(dst))
	}
	qr := f.qr
	y := Copy(b)
	// Apply Qᵀ to y.
	for k := 0; k < f.n; k++ {
		vk := qr.At(k, k)
		if vk == 0 {
			continue
		}
		s := 0.0
		for i := k; i < f.m; i++ {
			s += qr.At(i, k) * y[i]
		}
		s = -s / vk
		for i := k; i < f.m; i++ {
			y[i] += s * qr.At(i, k)
		}
	}
	// Back substitution with R.
	for i := f.n - 1; i >= 0; i-- {
		d := f.rDiag(i)
		if d == 0 {
			return ErrSingular
		}
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= qr.At(i, j) * y[j]
		}
		y[i] = s / d
	}
	copy(dst, y[:f.n])
	return nil
}

// Rank estimates the numerical rank from the diagonal of R relative to tol.
func (f *QR) Rank(tol float64) int {
	r := 0
	for k := 0; k < f.n; k++ {
		if math.Abs(f.rDiag(k)) > tol {
			r++
		}
	}
	return r
}
