package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveDense(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, []float64{2, 3, -1}, 1e-12)
}

func TestLUResidualRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		a := randomWellConditioned(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		vecAlmostEq(t, x, want, 1e-9)
	}
}

func TestLUSingularDetected(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{1, 2},
		{2, 4},
	})
	_, err := FactorLU(a)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{4, 3},
		{6, 3},
	})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-12) {
		t.Fatalf("Det = %g, want -6", f.Det())
	}
}

func TestLUPivotingHandlesZeroLeadingEntry(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := SolveDense(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, []float64{3, 2}, 1e-14)
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomWellConditioned(rng, 6)
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := Mul(a, inv)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("A·A⁻¹ differs from I at (%d,%d): %g", i, j, prod.At(i, j))
			}
		}
	}
}

func TestConditionEstimateOrdersOfMagnitude(t *testing.T) {
	id := Identity(4)
	f, err := FactorLU(id)
	if err != nil {
		t.Fatal(err)
	}
	c := f.ConditionEstimate(id)
	if c < 0.1 || c > 10 {
		t.Fatalf("condition estimate for identity should be O(1), got %g", c)
	}
	// A nearly singular matrix should produce a huge estimate.
	ns := NewDenseFrom([][]float64{
		{1, 1},
		{1, 1 + 1e-13},
	})
	f2, err := FactorLU(ns)
	if err != nil {
		t.Fatal(err)
	}
	if c2 := f2.ConditionEstimate(ns); c2 < 1e10 {
		t.Fatalf("expected near-singular condition estimate > 1e10, got %g", c2)
	}
}

func TestQRSolveSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(15)
		a := randomWellConditioned(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		f, err := FactorQR(a)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		if err := f.Solve(x, b); err != nil {
			t.Fatal(err)
		}
		vecAlmostEq(t, x, want, 1e-8)
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Overdetermined: fit y = 2t + 1 through noisy-free points; exact fit.
	a := NewDenseFrom([][]float64{
		{0, 1},
		{1, 1},
		{2, 1},
		{3, 1},
	})
	b := []float64{1, 3, 5, 7}
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	if err := f.Solve(x, b); err != nil {
		t.Fatal(err)
	}
	vecAlmostEq(t, x, []float64{2, 1}, 1e-12)
}

func TestQRRankDetection(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Rank(1e-10); r != 1 {
		t.Fatalf("rank = %d, want 1", r)
	}
}

func TestQRRejectsUnderdetermined(t *testing.T) {
	if _, err := FactorQR(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for m < n")
	}
}
