package la

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Duplicate entries
// are summed when converting to CSR, which is convenient for stencil
// assembly: each PDE node contributes its couplings independently.
type COO struct {
	rows, cols int
	ri, ci     []int
	v          []float64
	// next is ToCSR's per-row write-cursor scratch, kept on the builder so
	// repeated conversions (tile extraction, pattern rebuilds in loops)
	// reuse it instead of reallocating.
	next []int
}

// NewCOO returns an empty rows×cols builder.
func NewCOO(rows, cols int) *COO {
	return &COO{rows: rows, cols: cols}
}

// Append adds value v at (i, j). Zero values are kept so that stencils retain
// explicit structural entries (important for Jacobians whose numeric values
// change between Newton iterations but whose pattern is fixed).
func (c *COO) Append(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("la: COO index (%d,%d) out of bounds %d×%d", i, j, c.rows, c.cols))
	}
	c.ri = append(c.ri, i)
	c.ci = append(c.ci, j)
	c.v = append(c.v, v)
}

// NNZ reports the number of stored (pre-deduplication) entries.
func (c *COO) NNZ() int { return len(c.v) }

// ToCSR converts the builder into compressed sparse row form, summing
// duplicates and sorting column indices within each row.
func (c *COO) ToCSR() *CSR {
	// Count entries per row; count doubles as the CSR row-pointer array
	// (the builder never reads it again).
	count := make([]int, c.rows+1)
	for _, i := range c.ri {
		count[i+1]++
	}
	for i := 0; i < c.rows; i++ {
		count[i+1] += count[i]
	}
	colIdx := make([]int, len(c.v))
	vals := make([]float64, len(c.v))
	if cap(c.next) < c.rows {
		c.next = make([]int, c.rows)
	}
	next := c.next[:c.rows]
	copy(next, count[:c.rows])
	for k, i := range c.ri {
		p := next[i]
		colIdx[p] = c.ci[k]
		vals[p] = c.v[k]
		next[i]++
	}
	m := &CSR{rows: c.rows, cols: c.cols, rowPtr: count, colIdx: colIdx, vals: vals}
	m.sortRowsAndDedup()
	return m
}

// Copy64i duplicates an int slice.
func Copy64i(src []int) []int {
	dst := make([]int, len(src))
	copy(dst, src)
	return dst
}

// CSR is a compressed-sparse-row matrix. Within each row the column indices
// are strictly increasing.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Rows reports the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ reports the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// rowSorted reports whether row i's column indices are strictly increasing
// (sorted with no duplicates).
func (m *CSR) rowSorted(i int) bool {
	for k := m.rowPtr[i] + 1; k < m.rowPtr[i+1]; k++ {
		if m.colIdx[k] <= m.colIdx[k-1] {
			return false
		}
	}
	return true
}

// sortRowsAndDedup sorts column indices in each row and merges duplicates.
// The deterministic stencil walks emit most rows already strictly
// increasing, so a one-pass check first skips the sort machinery entirely
// when the whole matrix is clean, and per-row when only some rows need work.
func (m *CSR) sortRowsAndDedup() {
	clean := true
	for i := 0; i < m.rows; i++ {
		if !m.rowSorted(i) {
			clean = false
			break
		}
	}
	if clean {
		return
	}
	newPtr := make([]int, m.rows+1)
	nc := m.colIdx[:0]
	nv := m.vals[:0]
	type ent struct {
		j int
		v float64
	}
	var scratch []ent
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		if m.rowSorted(i) {
			// Compact the already-clean row in place: the write cursor never
			// passes the read cursor, so the aliased copy is safe.
			for k := lo; k < hi; k++ {
				nc = append(nc, m.colIdx[k])
				nv = append(nv, m.vals[k])
			}
			newPtr[i+1] = len(nc)
			continue
		}
		scratch = scratch[:0]
		for k := lo; k < hi; k++ {
			scratch = append(scratch, ent{m.colIdx[k], m.vals[k]})
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].j < scratch[b].j })
		for k := 0; k < len(scratch); {
			j := scratch[k].j
			v := 0.0
			for k < len(scratch) && scratch[k].j == j {
				v += scratch[k].v
				k++
			}
			nc = append(nc, j)
			nv = append(nv, v)
		}
		newPtr[i+1] = len(nc)
	}
	m.rowPtr = newPtr
	m.colIdx = nc
	m.vals = nv
}

// At returns the value at (i, j), zero if the entry is not stored.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := m.colIdx[lo:hi]
	k := sort.SearchInts(idx, j)
	if k < len(idx) && idx[k] == j {
		return m.vals[lo+k]
	}
	return 0
}

// SetExisting overwrites the stored entry at (i, j); it panics if the entry
// is not part of the sparsity pattern. Jacobian refreshes use this to reuse
// the structural pattern across Newton iterations.
func (m *CSR) SetExisting(i, j int, v float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := m.colIdx[lo:hi]
	k := sort.SearchInts(idx, j)
	if k < len(idx) && idx[k] == j {
		m.vals[lo+k] = v
		return
	}
	panic(fmt.Sprintf("la: SetExisting(%d,%d): entry not in pattern", i, j))
}

// RowNNZ returns the column indices and values of row i as shared slices.
func (m *CSR) RowNNZ(i int) ([]int, []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// MulVec computes dst = M·x.
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("la: CSR MulVec mismatch: %d×%d by %d into %d", m.rows, m.cols, len(x), len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		s := 0.0
		for k := lo; k < hi; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
}

// Residual computes dst = b − M·x.
func (m *CSR) Residual(dst, b, x []float64) {
	m.MulVec(dst, x)
	for i := range dst {
		dst[i] = b[i] - dst[i]
	}
}

// Diagonal extracts the main diagonal into a new slice; missing diagonal
// entries are zero.
func (m *CSR) Diagonal() []float64 {
	d := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	return &CSR{
		rows: m.rows, cols: m.cols,
		rowPtr: Copy64i(m.rowPtr),
		colIdx: Copy64i(m.colIdx),
		vals:   Copy(m.vals),
	}
}

// ToDense expands the matrix, for tests and for small analog-sized systems.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}

// Transpose returns the CSR transpose.
func (m *CSR) Transpose() *CSR {
	b := NewCOO(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			b.Append(m.colIdx[k], i, m.vals[k])
		}
	}
	return b.ToCSR()
}

// AddDiagonal adds eps to every main-diagonal entry in place. The diagonal
// must be part of the sparsity pattern (true for all stencil Jacobians);
// missing entries are reported as an error.
func (m *CSR) AddDiagonal(eps float64) error {
	if m.rows != m.cols {
		return fmt.Errorf("la: AddDiagonal on non-square %d×%d matrix", m.rows, m.cols)
	}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		idx := m.colIdx[lo:hi]
		k := sort.SearchInts(idx, i)
		if k >= len(idx) || idx[k] != i {
			return fmt.Errorf("la: AddDiagonal: row %d has no diagonal entry", i)
		}
		m.vals[lo+k] += eps
	}
	return nil
}

// ScaleRow multiplies every stored entry of row i by s.
func (m *CSR) ScaleRow(i int, s float64) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		m.vals[k] *= s
	}
}

// Scale multiplies every stored entry by s.
func (m *CSR) Scale(s float64) {
	for k := range m.vals {
		m.vals[k] *= s
	}
}

// ExtractSubmatrix returns the square submatrix of m restricted to the
// given global indices (rows and columns alike). idx must contain unique,
// in-range indices; the k-th row/column of the result corresponds to
// idx[k]. Entries of m coupling to indices outside idx are dropped — the
// "frozen neighbour" restriction used by nonlinear Gauss-Seidel domain
// decomposition.
func (m *CSR) ExtractSubmatrix(idx []int) *CSR {
	pos := make(map[int]int, len(idx))
	for k, g := range idx {
		pos[g] = k
	}
	b := NewCOO(len(idx), len(idx))
	for k, g := range idx {
		cols, vals := m.RowNNZ(g)
		for t, j := range cols {
			if c, ok := pos[j]; ok {
				b.Append(k, c, vals[t])
			}
		}
	}
	return b.ToCSR()
}

// Slot returns the storage index of entry (i, j) within the value array,
// or −1 if the entry is not in the pattern. Combined with SetSlotValue it
// lets stencil assemblers refresh a fixed-pattern matrix in place.
func (m *CSR) Slot(i, j int) int {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := m.colIdx[lo:hi]
	k := sort.SearchInts(idx, j)
	if k < len(idx) && idx[k] == j {
		return lo + k
	}
	return -1
}

// SetSlotValue overwrites the stored value at a Slot index.
func (m *CSR) SetSlotValue(slot int, v float64) { m.vals[slot] = v }

// ZeroValues clears every stored value, keeping the pattern. Paired with
// AddSlotValue it supports accumulate-style in-place pattern refreshes.
func (m *CSR) ZeroValues() {
	for i := range m.vals {
		m.vals[i] = 0
	}
}

// AddSlotValue accumulates v at a Slot index.
func (m *CSR) AddSlotValue(slot int, v float64) { m.vals[slot] += v }

// ZeroRowsValues clears the stored values of rows [lo, hi), keeping the
// pattern — the per-shard zeroing step of parallel in-place pattern
// refreshes, where each shard owns a disjoint row block.
func (m *CSR) ZeroRowsValues(lo, hi int) {
	for k := m.rowPtr[lo]; k < m.rowPtr[hi]; k++ {
		m.vals[k] = 0
	}
}
