package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the core data structures: the
// invariants other layers silently rely on.

func sanitize(x []float64, cap float64) {
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			x[i] = 0
		} else {
			x[i] = math.Mod(v, cap)
		}
	}
}

func TestPropertyCSRMatVecLinearity(t *testing.T) {
	// A·(x + αy) == A·x + α·A·y for any CSR built from random entries.
	rng := rand.New(rand.NewSource(90))
	f := func(vals [12]float64, x, y [6]float64, alphaRaw float64) bool {
		sanitize(vals[:], 1e6)
		sanitize(x[:], 1e6)
		sanitize(y[:], 1e6)
		alpha := math.Mod(alphaRaw, 100)
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			alpha = 1
		}
		bld := NewCOO(6, 6)
		for _, v := range vals {
			bld.Append(rng.Intn(6), rng.Intn(6), v)
		}
		a := bld.ToCSR()
		// z = x + α·y
		z := make([]float64, 6)
		for i := range z {
			z[i] = x[i] + alpha*y[i]
		}
		az := make([]float64, 6)
		ax := make([]float64, 6)
		ay := make([]float64, 6)
		a.MulVec(az, z)
		a.MulVec(ax, x[:])
		a.MulVec(ay, y[:])
		for i := range az {
			want := ax[i] + alpha*ay[i]
			tol := 1e-9 * (1 + math.Abs(az[i]) + math.Abs(want))
			if math.Abs(az[i]-want) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLUSolveRoundTrip(t *testing.T) {
	// For any diagonally dominant matrix, x = A⁻¹(A·x).
	rng := rand.New(rand.NewSource(91))
	f := func(x [7]float64) bool {
		sanitize(x[:], 1e3)
		a := randomWellConditioned(rng, 7)
		b := make([]float64, 7)
		a.MulVec(b, x[:])
		got, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBandEqualsDense(t *testing.T) {
	// Band LU and dense LU agree on any diagonally dominant banded system.
	rng := rand.New(rand.NewSource(92))
	f := func(rhs [10]float64) bool {
		sanitize(rhs[:], 1e3)
		n := 10
		bld := NewCOO(n, n)
		dn := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := max(0, i-2); j <= min(n-1, i+2); j++ {
				v := rng.NormFloat64()
				if i == j {
					v += 8
				}
				bld.Append(i, j, v)
				dn.Set(i, j, v)
			}
		}
		xb, _, err := SolveSparse(bld.ToCSR(), rhs[:])
		if err != nil {
			return false
		}
		xd, err := SolveDense(dn, rhs[:])
		if err != nil {
			return false
		}
		for i := range xb {
			if math.Abs(xb[i]-xd[i]) > 1e-8*(1+math.Abs(xd[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransposeAdjoint(t *testing.T) {
	// ⟨y, A·x⟩ == ⟨Aᵀ·y, x⟩ for arbitrary sparse A.
	rng := rand.New(rand.NewSource(93))
	f := func(x [5]float64, y [8]float64) bool {
		sanitize(x[:], 1e4)
		sanitize(y[:], 1e4)
		bld := NewCOO(8, 5)
		for k := 0; k < 14; k++ {
			bld.Append(rng.Intn(8), rng.Intn(5), rng.NormFloat64())
		}
		a := bld.ToCSR()
		ax := make([]float64, 8)
		a.MulVec(ax, x[:])
		aty := make([]float64, 5)
		a.MulTransVec(aty, y[:])
		l := Dot(y[:], ax)
		r := Dot(aty, x[:])
		return math.Abs(l-r) <= 1e-8*(1+math.Abs(l)+math.Abs(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCholeskyAgreesWithLU(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	f := func(rhs [6]float64) bool {
		sanitize(rhs[:], 1e3)
		bm := randomDense(rng, 6, 6)
		a := Mul(bm.Transpose(), bm)
		for i := 0; i < 6; i++ {
			a.Add(i, i, 2)
		}
		ch, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		xc := make([]float64, 6)
		if err := ch.Solve(xc, rhs[:]); err != nil {
			return false
		}
		xl, err := SolveDense(a, rhs[:])
		if err != nil {
			return false
		}
		for i := range xc {
			if math.Abs(xc[i]-xl[i]) > 1e-7*(1+math.Abs(xl[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubmatrixConsistency(t *testing.T) {
	// ExtractSubmatrix(idx) must equal the dense submatrix for any index
	// subset.
	rng := rand.New(rand.NewSource(95))
	f := func(pick [4]uint8) bool {
		n := 9
		bld := NewCOO(n, n)
		dn := NewDense(n, n)
		for k := 0; k < 30; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.NormFloat64()
			bld.Append(i, j, v)
			dn.Add(i, j, v)
		}
		a := bld.ToCSR()
		seen := map[int]bool{}
		var idx []int
		for _, p := range pick {
			g := int(p) % n
			if !seen[g] {
				seen[g] = true
				idx = append(idx, g)
			}
		}
		if len(idx) == 0 {
			return true
		}
		sub := a.ExtractSubmatrix(idx)
		for r, gr := range idx {
			for c, gc := range idx {
				if math.Abs(sub.At(r, c)-dn.At(gr, gc)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
