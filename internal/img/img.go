// Package img writes the basin-of-attraction images of Figures 2 and 3 as
// binary PPM files (a zero-dependency raster format readable by any image
// viewer or converter).
package img

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Color is an 8-bit RGB triple.
type Color struct{ R, G, B uint8 }

// The palette used by the basin plots: one colour per root, plus the
// paper's "pink" wrong-result region and black for no convergence.
var (
	Root0      = Color{230, 57, 70}   // red — root 0
	Root1      = Color{69, 123, 157}  // blue — root 1
	Root2      = Color{244, 211, 94}  // yellow — root 2
	Root3      = Color{82, 183, 136}  // green — root 3
	WrongPink  = Color{255, 175, 204} // settled on a non-root (Figure 3 pink)
	NoConverge = Color{20, 20, 20}    // never settled
)

// RootPalette returns the colour for root index k (cycling past 4).
func RootPalette(k int) Color {
	switch k % 4 {
	case 0:
		return Root0
	case 1:
		return Root1
	case 2:
		return Root2
	default:
		return Root3
	}
}

// Image is a simple RGB raster.
type Image struct {
	W, H int
	pix  []Color
}

// New allocates a W×H image initialised to black.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %d×%d", w, h))
	}
	return &Image{W: w, H: h, pix: make([]Color, w*h)}
}

// Set colours pixel (x, y); (0,0) is top-left.
func (m *Image) Set(x, y int, c Color) {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		panic(fmt.Sprintf("img: pixel (%d,%d) out of bounds %d×%d", x, y, m.W, m.H))
	}
	m.pix[y*m.W+x] = c
}

// At returns the pixel colour.
func (m *Image) At(x, y int) Color { return m.pix[y*m.W+x] }

// EncodePPM writes the image in binary PPM (P6) format.
func (m *Image) EncodePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	buf := make([]byte, 0, 3*m.W)
	for y := 0; y < m.H; y++ {
		buf = buf[:0]
		for x := 0; x < m.W; x++ {
			c := m.pix[y*m.W+x]
			buf = append(buf, c.R, c.G, c.B)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePPM saves the image to a file.
func (m *Image) WritePPM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.EncodePPM(f); err != nil {
		return err
	}
	return f.Close()
}

// BoundaryFraction measures basin fragmentation: the share of pixels whose
// right or bottom neighbour has a different colour. Contiguous basins
// (continuous Newton, Figure 2) score low; fractal basins (classical
// Newton) score high.
func (m *Image) BoundaryFraction() float64 {
	if m.W < 2 || m.H < 2 {
		return 0
	}
	edges, total := 0, 0
	for y := 0; y < m.H-1; y++ {
		for x := 0; x < m.W-1; x++ {
			c := m.At(x, y)
			if c != m.At(x+1, y) || c != m.At(x, y+1) {
				edges++
			}
			total++
		}
	}
	return float64(edges) / float64(total)
}
