package img

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSetAtRoundTrip(t *testing.T) {
	m := New(4, 3)
	c := Color{10, 20, 30}
	m.Set(3, 2, c)
	if m.At(3, 2) != c {
		t.Fatal("Set/At round trip failed")
	}
	if m.At(0, 0) != (Color{}) {
		t.Fatal("fresh pixels should be black")
	}
}

func TestBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds pixel")
		}
	}()
	New(2, 2).Set(2, 0, Color{})
}

func TestInvalidDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-sized image")
		}
	}()
	New(0, 5)
}

func TestEncodePPM(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, Color{255, 0, 0})
	m.Set(1, 1, Color{0, 0, 255})
	var buf bytes.Buffer
	if err := m.EncodePPM(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.Bytes()
	if !strings.HasPrefix(string(s), "P6\n2 2\n255\n") {
		t.Fatalf("bad PPM header: %q", s[:12])
	}
	body := s[len("P6\n2 2\n255\n"):]
	if len(body) != 12 {
		t.Fatalf("PPM body length %d, want 12", len(body))
	}
	if body[0] != 255 || body[1] != 0 || body[2] != 0 {
		t.Fatal("pixel (0,0) not encoded as red")
	}
	if body[9] != 0 || body[10] != 0 || body[11] != 255 {
		t.Fatal("pixel (1,1) not encoded as blue")
	}
}

func TestWritePPM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.ppm")
	m := New(3, 3)
	if err := m.WritePPM(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len("P6\n3 3\n255\n")+27 {
		t.Fatalf("file size %d unexpected", len(data))
	}
}

func TestBoundaryFraction(t *testing.T) {
	// Uniform image: no boundaries.
	m := New(8, 8)
	if f := m.BoundaryFraction(); f != 0 {
		t.Fatalf("uniform image boundary fraction %g, want 0", f)
	}
	// Vertical split: boundary only along one column.
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			m.Set(x, y, Color{255, 255, 255})
		}
	}
	split := m.BoundaryFraction()
	if split <= 0 || split > 0.3 {
		t.Fatalf("split image fraction %g out of range", split)
	}
	// Checkerboard: maximal fragmentation.
	cb := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if (x+y)%2 == 0 {
				cb.Set(x, y, Color{255, 255, 255})
			}
		}
	}
	if cbf := cb.BoundaryFraction(); cbf <= split {
		t.Fatalf("checkerboard (%g) must be more fragmented than split (%g)", cbf, split)
	}
}

func TestRootPalette(t *testing.T) {
	seen := map[Color]bool{}
	for k := 0; k < 4; k++ {
		seen[RootPalette(k)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("palette should have 4 distinct colours, got %d", len(seen))
	}
	if RootPalette(5) != RootPalette(1) {
		t.Fatal("palette should cycle")
	}
}
