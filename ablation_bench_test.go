// Ablation benchmarks for the design choices DESIGN.md §7 calls out: the
// damping schedule, the analog seed, converter resolution, quasi-Newton
// iteration and stencil order. Each reports the quantity the ablation is
// about as a custom metric.
package main

import (
	"math/rand"
	"testing"

	"hybridpde/internal/analog"
	"hybridpde/internal/core"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
	"hybridpde/internal/stats"
)

// ablationProblem builds a moderately hard planted-root Burgers step.
func ablationProblem(b *testing.B, n int, re, bound float64, seed int64) (*pde.Burgers, []float64, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	prob, err := pde.RandomBurgers(n, re, bound, rng)
	if err != nil {
		b.Fatal(err)
	}
	root := make([]float64, prob.Dim())
	for i := range root {
		root[i] = bound * (2*rng.Float64() - 1)
	}
	if err := prob.SetRHSForRoot(root); err != nil {
		b.Fatal(err)
	}
	u0 := make([]float64, prob.Dim())
	for i := range u0 {
		u0[i] = bound * (2*rng.Float64() - 1)
	}
	return prob, root, u0
}

// BenchmarkAblationDampingSchedule compares the paper's halve-on-failure
// schedule with an Armijo line search on a problem where classical Newton
// (h = 1) fails outright.
func BenchmarkAblationDampingSchedule(b *testing.B) {
	var autoIters, armijoIters int
	for i := 0; i < b.N; i++ {
		prob, _, u0 := ablationProblem(b, 8, 2.0, 2.4, 77)
		res, err := nonlin.NewtonSparse(nil, prob, u0, nonlin.NewtonOptions{Tol: 1e-9, RelTol: 1e-13, AutoDamp: true, MaxIter: 400})
		if err == nil {
			autoIters = res.TotalIters
		}
		dres, err := nonlin.NewtonArmijo(nil, nonlin.DenseAdapter{S: prob}, u0, nonlin.NewtonOptions{Tol: 1e-9, RelTol: 1e-13, MaxIter: 400})
		if err == nil {
			armijoIters = dres.Iterations
		}
	}
	b.ReportMetric(float64(autoIters), "autodamp-total-iters")
	b.ReportMetric(float64(armijoIters), "armijo-iters")
}

// BenchmarkAblationSeeding measures the counted digital iterations with and
// without the analog seed — the mechanism behind Figures 8 and 9.
func BenchmarkAblationSeeding(b *testing.B) {
	acc, err := analog.NewScaled(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeder := core.AnalogSeeder(acc)
	var cold, seeded int
	for i := 0; i < b.N; i++ {
		prob, _, u0 := ablationProblem(b, 8, 2.0, 2.1, 78)
		opts := core.Options{InitialGuess: u0, Seeder: seeder}
		opts.Analog.DynamicRange = 1.5 * 2.1
		if rep, err := core.Solve(nil, prob, opts); err == nil {
			seeded = rep.Digital.Iterations
		}
		optsCold := opts
		optsCold.SkipAnalog = true
		if rep, err := core.Solve(nil, prob, optsCold); err == nil {
			cold = rep.Digital.Iterations
		}
	}
	b.ReportMetric(float64(cold), "cold-iters")
	b.ReportMetric(float64(seeded), "seeded-iters")
}

// BenchmarkAblationADCBits sweeps converter resolution: solution error
// should degrade as bits shrink, flattening once component mismatch
// dominates (~8 bits, the prototype's choice).
func BenchmarkAblationADCBits(b *testing.B) {
	for _, bits := range []int{4, 6, 8, 12} {
		b.Run(map[int]string{4: "4bit", 6: "6bit", 8: "8bit", 12: "12bit"}[bits], func(b *testing.B) {
			var rms float64
			for i := 0; i < b.N; i++ {
				acc := analog.NewAccelerator(analog.Config{Seed: 5, ADCBits: bits, DACBits: bits})
				rng := rand.New(rand.NewSource(79))
				var perTrial []float64
				for t := 0; t < 10; t++ {
					prob, err := pde.RandomBurgers(2, 1.0, 3.0, rng)
					if err != nil {
						b.Fatal(err)
					}
					root := make([]float64, prob.Dim())
					for k := range root {
						root[k] = 3 * (2*rng.Float64() - 1)
					}
					if err := prob.SetRHSForRoot(root); err != nil {
						b.Fatal(err)
					}
					sol, err := acc.SolveSparse(nil, prob, root, analog.SolveOptions{DynamicRange: 4.5})
					if err != nil || !sol.Converged {
						continue
					}
					golden, err := core.GoldenSolve(nil, prob, sol.U)
					if err != nil {
						continue
					}
					perTrial = append(perTrial, 100*stats.RMSError(sol.U, golden, 4.5))
				}
				rms = stats.TotalRMS(perTrial)
			}
			b.ReportMetric(rms, "RMS-%")
		})
	}
}

// BenchmarkAblationBroyden compares Broyden's quasi-Newton iteration count
// and factorization count against full Newton on the coupled quadratic
// system.
func BenchmarkAblationBroyden(b *testing.B) {
	sys := pde.Equation2(1.0, -1.0)
	var newtonFactors, broydenFactors, broydenIters, newtonIters int
	for i := 0; i < b.N; i++ {
		if res, err := nonlin.Newton(nil, sys, []float64{0.5, 0.5}, nonlin.NewtonOptions{Tol: 1e-10}); err == nil {
			newtonFactors = res.LinearSolves
			newtonIters = res.Iterations
		}
		if res, err := nonlin.Broyden(sys, []float64{0.5, 0.5}, nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 200}); err == nil {
			broydenFactors = res.LinearSolves
			broydenIters = res.Iterations
		}
	}
	b.ReportMetric(float64(newtonIters), "newton-iters")
	b.ReportMetric(float64(newtonFactors), "newton-factorizations")
	b.ReportMetric(float64(broydenIters), "broyden-iters")
	b.ReportMetric(float64(broydenFactors), "broyden-factorizations")
}

// BenchmarkAblationStencilOrder compares the order-2 and order-4 stencils:
// the wider stencil increases Jacobian bandwidth (a larger accelerator, §7)
// without changing Newton behaviour on these smooth problems.
func BenchmarkAblationStencilOrder(b *testing.B) {
	var nnz2, nnz4 float64
	var it2, it4 int
	for i := 0; i < b.N; i++ {
		for _, order := range []int{2, 4} {
			prob, _, u0 := ablationProblem(b, 8, 0.5, 1.5, 80)
			prob.Order = order
			j, err := prob.JacobianCSR(u0)
			if err != nil {
				b.Fatal(err)
			}
			res, err := nonlin.NewtonSparse(nil, prob, u0, nonlin.NewtonOptions{Tol: 1e-9, RelTol: 1e-13, AutoDamp: true, MaxIter: 300})
			if err != nil {
				continue
			}
			if order == 2 {
				nnz2, it2 = float64(j.NNZ()), res.Iterations
			} else {
				nnz4, it4 = float64(j.NNZ()), res.Iterations
			}
		}
	}
	b.ReportMetric(nnz2, "order2-nnz")
	b.ReportMetric(nnz4, "order4-nnz")
	b.ReportMetric(float64(it2), "order2-iters")
	b.ReportMetric(float64(it4), "order4-iters")
}
