#!/bin/sh
# Cache smoke: boot pdeserved with the solve cache on, replay identical and
# near-identical load through pdeload, and assert the cache plane actually
# worked — nonzero exact and warm hits in /metrics, byte-identical response
# bodies for exact repeats, and a clean SIGTERM drain. Run from the
# repository root; also available as `make cache-smoke`.
#
# Env knobs (defaults are CI-sized):
#   SMOKE_ADDR       API address        (default 127.0.0.1:18082)
#   SMOKE_RATE       offered rps        (default 150)
#   SMOKE_DURATION   load duration      (default 4s)
set -eu

cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18082}"
RATE="${SMOKE_RATE:-150}"
DURATION="${SMOKE_DURATION:-4s}"
TMP="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/pdeserved" ./cmd/pdeserved
go build -o "$TMP/pdeload" ./cmd/pdeload

echo "== boot pdeserved on $ADDR (cache on)"
"$TMP/pdeserved" -addr "$ADDR" -debug-addr "" >"$TMP/server.log" 2>&1 &
SRV_PID=$!

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "server never became healthy" >&2
		cat "$TMP/server.log" >&2
		exit 1
	fi
	sleep 0.1
done

echo "== byte-identity: exact repeats replay the same body"
REQ='{"problem":"burgers-steady","n":5,"seed":12}'
# queue_seconds/solve_seconds are measured wall time; everything else must
# match byte for byte between a solve and its cached replay.
strip() {
	sed -e 's/"queue_seconds":[^,}]*[,}]//' -e 's/"solve_seconds":[^,}]*[,}]//'
}
COLD="$(curl -fsS -X POST -d "$REQ" "http://$ADDR/v1/solve" | strip)"
for i in 1 2 3; do
	WARM="$(curl -fsS -X POST -d "$REQ" "http://$ADDR/v1/solve" | strip)"
	if [ "$WARM" != "$COLD" ]; then
		echo "replayed body diverged from the original solve:" >&2
		echo " cold: $COLD" >&2
		echo " warm: $WARM" >&2
		exit 1
	fi
done

echo "== pdeload: repeated parameter sweep at $RATE rps for $DURATION"
# One field realisation (-seed-spread 1), four sweep points cycling forever:
# every point after the first lap is an exact repeat (cache hit) and the
# early laps warm-start off their nearest solved neighbour.
"$TMP/pdeload" -url "http://$ADDR" -rate "$RATE" -duration "$DURATION" \
	-problem burgers-steady -n 5 -seed-spread 1 \
	-re 1.0 -re-step 0.01 -re-count 4 -out "$TMP/bench.json"

echo "== metrics: cache plane counted hits"
METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '^pdeserve_cache_hits_total [1-9]' || {
	echo "no exact cache hits counted" >&2
	echo "$METRICS" | grep '^pdeserve_cache' >&2
	exit 1
}
echo "$METRICS" | grep -q '^pdeserve_cache_warm_hits_total [1-9]' || {
	echo "no warm-start hits counted" >&2
	echo "$METRICS" | grep '^pdeserve_cache' >&2
	exit 1
}
echo "$METRICS" | grep '^pdeserve_cache'

echo "== SIGTERM drain"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "server did not exit within 10s of SIGTERM" >&2
		exit 1
	fi
	sleep 0.1
done
wait "$SRV_PID" 2>/dev/null || {
	echo "server exited non-zero on drain" >&2
	cat "$TMP/server.log" >&2
	exit 1
}
grep -q "drained cleanly" "$TMP/server.log" || {
	echo "server log missing clean-drain marker" >&2
	cat "$TMP/server.log" >&2
	exit 1
}

echo "OK"
