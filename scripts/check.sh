#!/bin/sh
# Full verification gate: build, vet, formatting, and the test suite under
# the race detector (the parallel red-black Gauss-Seidel sweep must stay
# race-clean). Run from the repository root; also available as `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "OK"
