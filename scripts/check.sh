#!/bin/sh
# Full verification gate: build, vet, formatting, and the test suite under
# the race detector (the parallel red-black Gauss-Seidel sweep must stay
# race-clean). Run from the repository root; also available as `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== pdevet -baseline .pdevet-baseline ./..."
go run ./cmd/pdevet -baseline .pdevet-baseline ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "== pdebench smoke (determinism checksums across worker counts)"
go run ./cmd/pdebench -short -reps 1 -out /tmp/pdebench_check.json > /dev/null

echo "== fuzz smoke (3s per target)"
go test -run '^$' -fuzz FuzzSolveTridiagonal -fuzztime 3s ./internal/la/
go test -run '^$' -fuzz FuzzBandLU -fuzztime 3s ./internal/la/
go test -run '^$' -fuzz FuzzCSR -fuzztime 3s ./internal/la/
go test -run '^$' -fuzz FuzzParseNetlist -fuzztime 3s ./internal/analog/
go test -run '^$' -fuzz FuzzParseFaultSpec -fuzztime 3s ./internal/fault/
go test -run '^$' -fuzz FuzzCacheKey -fuzztime 3s ./internal/cache/

echo "OK"
