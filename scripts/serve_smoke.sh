#!/bin/sh
# Serve smoke: boot pdeserved, drive it with pdeload, assert the run saw
# successful responses, then check the server drains cleanly on SIGTERM.
# Run from the repository root; also available as `make serve-smoke`.
#
# Env knobs (defaults are CI-sized):
#   SMOKE_ADDR       API address        (default 127.0.0.1:18080)
#   SMOKE_RATE       offered rps        (default 200)
#   SMOKE_DURATION   load duration      (default 5s)
set -eu

cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
RATE="${SMOKE_RATE:-200}"
DURATION="${SMOKE_DURATION:-5s}"
TMP="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/pdeserved" ./cmd/pdeserved
go build -o "$TMP/pdeload" ./cmd/pdeload

echo "== boot pdeserved on $ADDR"
"$TMP/pdeserved" -addr "$ADDR" -debug-addr "" >"$TMP/server.log" 2>&1 &
SRV_PID=$!

# Wait for /healthz, bounded.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "server never became healthy" >&2
		cat "$TMP/server.log" >&2
		exit 1
	fi
	sleep 0.1
done

echo "== pdeload: $RATE rps for $DURATION"
# pdeload exits 1 itself when no request succeeded; that is the liveness gate.
"$TMP/pdeload" -url "http://$ADDR" -rate "$RATE" -duration "$DURATION" \
	-problem burgers-steady -n 5 -out "$TMP/bench.json"

echo "== metrics sanity"
curl -fsS "http://$ADDR/metrics" | grep -q '^pdeserve_requests_total{problem="burgers-steady",code="200"} [1-9]' || {
	echo "metrics plane did not count successful solves" >&2
	exit 1
}

echo "== SIGTERM drain"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "server did not exit within 10s of SIGTERM" >&2
		exit 1
	fi
	sleep 0.1
done
wait "$SRV_PID" 2>/dev/null || {
	echo "server exited non-zero on drain" >&2
	cat "$TMP/server.log" >&2
	exit 1
}
grep -q "drained cleanly" "$TMP/server.log" || {
	echo "server log missing clean-drain marker" >&2
	cat "$TMP/server.log" >&2
	exit 1
}

echo "OK"
