#!/bin/sh
# Scale smoke: boot pdeserved with an autoscaler range (-min-workers 1
# -max-workers 4), ramp open-loop load through it, and assert the pool
# provably adapts — the workers gauge rises off the floor during the ramp
# and settles back to it when load stops, scale-up resizes are counted,
# Workers×SolveProcs stays within the GOMAXPROCS budget at every sampled
# size, responses stay bit-identical to a fixed-size server, the whole run
# sees zero 5xx, and SIGTERM drains cleanly. Run from the repository root;
# also available as `make scale-smoke`.
#
# Env knobs (defaults are CI-sized):
#   SMOKE_ADDR       elastic server address (default 127.0.0.1:18085)
#   SMOKE_FIXED_ADDR fixed server address   (default 127.0.0.1:18086)
#   SMOKE_RAMP       ramp profile           (default 40:400:4)
#   SMOKE_DURATION   total ramp duration    (default 6s)
set -eu

cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18085}"
FIXED_ADDR="${SMOKE_FIXED_ADDR:-127.0.0.1:18086}"
RAMP="${SMOKE_RAMP:-100:1000:4}"
DURATION="${SMOKE_DURATION:-6s}"
TMP="$(mktemp -d)"
trap 'kill "$SRV_PID" "$FIXED_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/pdeserved" ./cmd/pdeserved
go build -o "$TMP/pdeload" ./cmd/pdeload

wait_healthy() { # url logfile
	i=0
	until curl -fsS "$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "$1 never became healthy" >&2
			cat "$2" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# metric NAME URL — print the value of a single-sample metric.
metric() {
	curl -fsS "http://$2/metrics" | awk -v m="$1" '$1 == m { print $2 }'
}

echo "== boot elastic pdeserved on $ADDR (1..4 workers, 50ms ticks)"
"$TMP/pdeserved" -addr "$ADDR" -debug-addr "" \
	-min-workers 1 -max-workers 4 -scale-interval 50ms \
	-scale-up-queue 2 -scale-idle-ticks 4 -cache-off >"$TMP/srv.log" 2>&1 &
SRV_PID=$!
echo "== boot fixed pdeserved on $FIXED_ADDR (pinned at 1 worker)"
"$TMP/pdeserved" -addr "$FIXED_ADDR" -debug-addr "" \
	-workers 1 -cache-off >"$TMP/fixed.log" 2>&1 &
FIXED_PID=$!
wait_healthy "http://$ADDR" "$TMP/srv.log"
wait_healthy "http://$FIXED_ADDR" "$TMP/fixed.log"

grep -q "autoscaler armed" "$TMP/srv.log" || {
	echo "elastic server did not arm the autoscaler" >&2
	cat "$TMP/srv.log" >&2
	exit 1
}
if [ "$(metric pdeserve_workers "$ADDR")" != "1" ]; then
	echo "elastic server did not start at the 1-worker floor" >&2
	exit 1
fi

echo "== ramp $RAMP rps over $DURATION, sampling the workers gauge"
"$TMP/pdeload" -url "http://$ADDR" -ramp "$RAMP" -duration "$DURATION" \
	-concurrency 256 -problem burgers-steady -n 12 -seed-spread 8 \
	-re 1.0 -re-step 0.01 -re-count 8 -out "$TMP/ramp.json" \
	>"$TMP/load.log" 2>"$TMP/load.err" &
LOAD_PID=$!
PEAK=1
while kill -0 "$LOAD_PID" 2>/dev/null; do
	W="$(metric pdeserve_workers "$ADDR" || echo "$PEAK")"
	P="$(metric pdeserve_solve_procs "$ADDR" || echo 1)"
	G="$(metric pdeserve_gomaxprocs "$ADDR" || echo 0)"
	if [ -n "$W" ] && [ "$W" -gt "$PEAK" ]; then PEAK=$W; fi
	# The budget invariant holds at every sampled pool size.
	if [ -n "$W" ] && [ -n "$P" ] && [ -n "$G" ] && [ "$G" -gt 0 ] &&
		[ $((W * P)) -gt "$G" ] && [ "$W" -le "$G" ]; then
		echo "budget violated mid-ramp: $W workers x $P procs > GOMAXPROCS $G" >&2
		exit 1
	fi
	sleep 0.1
done
wait "$LOAD_PID" || {
	echo "pdeload exited non-zero" >&2
	cat "$TMP/load.err" >&2
	exit 1
}
grep '^pdeload: ramp step' "$TMP/load.err" || {
	echo "pdeload printed no per-step ramp summaries" >&2
	cat "$TMP/load.err" >&2
	exit 1
}

echo "== the pool scaled up under the ramp (peak sampled: $PEAK workers)"
if [ "$PEAK" -lt 2 ]; then
	echo "workers gauge never rose above the floor during the ramp" >&2
	curl -fsS "http://$ADDR/metrics" | grep '^pdeserve_workers\|^pdeserve_resizes' >&2 || true
	exit 1
fi
METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '^pdeserve_resizes_total{direction="up"' || {
	echo "no scale-up resize was counted" >&2
	echo "$METRICS" | grep '^pdeserve_' >&2
	exit 1
}
grep -q '"server_5xx": 0' "$TMP/ramp.json" || {
	echo "ramp saw 5xx responses" >&2
	cat "$TMP/ramp.json" >&2
	exit 1
}
grep -q '"ramp_steps"' "$TMP/ramp.json" || {
	echo "report carries no ramp_steps breakdown" >&2
	cat "$TMP/ramp.json" >&2
	exit 1
}

echo "== idle: the pool settles back to the floor"
i=0
until [ "$(metric pdeserve_workers "$ADDR")" = "1" ]; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "pool never scaled back down to the 1-worker floor" >&2
		curl -fsS "http://$ADDR/metrics" | grep '^pdeserve_workers\|^pdeserve_resizes' >&2
		exit 1
	fi
	sleep 0.1
done
METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '^pdeserve_resizes_total{direction="down",reason="idle"' || {
	echo "no idle scale-down was counted" >&2
	exit 1
}
echo "$METRICS" | grep '^pdeserve_workers\|^pdeserve_solve_procs\|^pdeserve_resizes_total'

echo "== bit-identity: elastic (post-resize-history) vs fixed 1-worker server"
for SEED in 3 5 7; do
	BODY="{\"problem\":\"burgers-steady\",\"n\":7,\"seed\":$SEED,\"re\":1.25}"
	A="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" "http://$ADDR/v1/solve" |
		sed -E 's/"(queue|solve)_seconds":[0-9eE.+-]+//g')"
	B="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" "http://$FIXED_ADDR/v1/solve" |
		sed -E 's/"(queue|solve)_seconds":[0-9eE.+-]+//g')"
	if [ "$A" != "$B" ]; then
		echo "seed $SEED diverged between elastic and fixed pools:" >&2
		echo "elastic: $A" >&2
		echo "fixed:   $B" >&2
		exit 1
	fi
done
echo "3/3 seeds bit-identical"

echo "== SIGTERM drain"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "server did not exit within 10s of SIGTERM" >&2
		exit 1
	fi
	sleep 0.1
done
wait "$SRV_PID" 2>/dev/null || {
	echo "server exited non-zero on drain" >&2
	cat "$TMP/srv.log" >&2
	exit 1
}
grep -q "drained cleanly" "$TMP/srv.log" || {
	echo "log missing clean-drain marker" >&2
	cat "$TMP/srv.log" >&2
	exit 1
}
kill -TERM "$FIXED_PID" 2>/dev/null || true

echo "OK"
