#!/bin/sh
# Cluster bench: measure gateway throughput with 1, 2 and 3 pdeserved
# backends and write the committed BENCH_cluster.json. Each stage boots a
# fresh fleet, drives three problem shapes through pdegw (shape diversity
# is what lets the ring spread load), and records the stage's throughput
# plus the fleet evidence: the gateway's per-backend routed and batch
# counters and every backend's cache hit counters.
#
# Scaling is asserted only on multi-core machines: like pdebench's
# -min-speedup, the check is skipped with a NOTICE when the host has one
# CPU, where three single-threaded backends time-slice one core and
# throughput cannot scale. The counters above remain the evidence that
# the fleet path (routing, batching, per-backend caches) did the work.
#
# Env knobs:
#   BENCH_OUT        output file        (default BENCH_cluster.json)
#   BENCH_RATE       offered rps/shape  (default 150)
#   BENCH_DURATION   load per shape     (default 2s)
#   BENCH_MIN_SPEEDUP  3-vs-1 backend factor (default 1.2)
#   BENCH_BASE_PORT  first backend port (default 18071)
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_cluster.json}"
RATE="${BENCH_RATE:-150}"
DURATION="${BENCH_DURATION:-2s}"
MIN_SPEEDUP="${BENCH_MIN_SPEEDUP:-1.2}"
BASE_PORT="${BENCH_BASE_PORT:-18071}"
GW_ADDR="127.0.0.1:$((BASE_PORT - 1))"
NUMCPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
TMP="$(mktemp -d)"
PIDS=""
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/pdeserved" ./cmd/pdeserved
go build -o "$TMP/pdegw" ./cmd/pdegw
go build -o "$TMP/pdeload" ./cmd/pdeload

wait_healthy() { # url
	i=0
	until curl -fsS "$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "$1 never became healthy" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# jnum FILE KEY — pull a top-level numeric field out of a JSON report.
jnum() {
	sed -n "s/^  \"$2\": \([0-9.eE+-]*\),*$/\1/p" "$1" | head -1
}

run_stage() { # nbackends
	N="$1"
	BACKENDS=""
	PIDS=""
	for i in $(seq 0 $((N - 1))); do
		PORT=$((BASE_PORT + i))
		"$TMP/pdeserved" -addr "127.0.0.1:$PORT" -debug-addr "" >"$TMP/s$N-b$i.log" 2>&1 &
		PIDS="$PIDS $!"
		BACKENDS="$BACKENDS,http://127.0.0.1:$PORT"
	done
	BACKENDS="${BACKENDS#,}"
	for i in $(seq 0 $((N - 1))); do
		wait_healthy "http://127.0.0.1:$((BASE_PORT + i))"
	done
	"$TMP/pdegw" -addr "$GW_ADDR" -backends "$BACKENDS" >"$TMP/s$N-gw.log" 2>&1 &
	GW_PID=$!
	PIDS="$PIDS $GW_PID"
	wait_healthy "http://$GW_ADDR"

	OK=0
	ERR5=0
	SECS=0
	for GRID in 5 6 7; do
		"$TMP/pdeload" -targets "http://$GW_ADDR" -rate "$RATE" -duration "$DURATION" \
			-problem burgers-steady -n "$GRID" -seed-spread 2 \
			-re 1.0 -re-step 0.01 -re-count 4 \
			-out "$TMP/s$N-n$GRID.json" >/dev/null
		OK=$((OK + $(jnum "$TMP/s$N-n$GRID.json" ok_2xx)))
		ERR5=$((ERR5 + $(jnum "$TMP/s$N-n$GRID.json" server_5xx)))
		SECS="$(awk "BEGIN{print $SECS + $(jnum "$TMP/s$N-n$GRID.json" duration_seconds)}")"
	done
	THROUGHPUT="$(awk "BEGIN{printf \"%.2f\", $OK / $SECS}")"

	# Fleet evidence: gateway routing/batch counters and per-backend caches.
	GWM="$(curl -fsS "http://$GW_ADDR/metrics")"
	ROUTED="$(echo "$GWM" | sed -n 's/^pdegw_backend_routed_total{backend="\([^"]*\)"} \([0-9]*\)$/    {"backend": "\1", "routed": \2},/p')"
	BATCHES="$(echo "$GWM" | sed -n 's/^pdegw_batches_total \([0-9]*\)$/\1/p')"
	DEDUPED="$(echo "$GWM" | sed -n 's/^pdegw_batch_deduped_total \([0-9]*\)$/\1/p')"
	FAILOVERS="$(echo "$GWM" | sed -n 's/^pdegw_failovers_total \([0-9]*\)$/\1/p')"
	CACHES=""
	for i in $(seq 0 $((N - 1))); do
		PORT=$((BASE_PORT + i))
		BM="$(curl -fsS "http://127.0.0.1:$PORT/metrics")"
		HITS="$(echo "$BM" | sed -n 's/^pdeserve_cache_hits_total \([0-9]*\)$/\1/p')"
		WARM="$(echo "$BM" | sed -n 's/^pdeserve_cache_warm_hits_total \([0-9]*\)$/\1/p')"
		MISS="$(echo "$BM" | sed -n 's/^pdeserve_cache_misses_total \([0-9]*\)$/\1/p')"
		RATE_PCT="$(awk "BEGIN{t=$HITS+$WARM+$MISS; if (t>0) printf \"%.3f\", ($HITS+$WARM)/t; else print 0}")"
		CACHES="$CACHES    {\"backend\": \"http://127.0.0.1:$PORT\", \"hits\": $HITS, \"warm_hits\": $WARM, \"misses\": $MISS, \"hit_rate\": $RATE_PCT},
"
	done

	{
		echo "  {"
		echo "    \"backends\": $N,"
		echo "    \"ok_2xx\": $OK,"
		echo "    \"server_5xx\": $ERR5,"
		echo "    \"throughput_rps\": $THROUGHPUT,"
		echo "    \"gateway_batches\": $BATCHES,"
		echo "    \"gateway_deduped\": $DEDUPED,"
		echo "    \"gateway_failovers\": $FAILOVERS,"
		echo "    \"routed\": ["
		echo "$ROUTED" | sed '$ s/,$//'
		echo "    ],"
		echo "    \"backend_caches\": ["
		printf '%s' "$CACHES" | sed '$ s/,$//'
		echo "    ]"
		echo "  }"
	} >"$TMP/stage$N.json"

	if [ "$ERR5" -ne 0 ]; then
		echo "stage $N saw $ERR5 server errors" >&2
		exit 1
	fi

	kill -TERM $PIDS 2>/dev/null || true
	for P in $PIDS; do
		wait "$P" 2>/dev/null || true
	done
	PIDS=""
	echo "stage $N backends: throughput ${THROUGHPUT} rps (ok=$OK, 5xx=$ERR5)"
	eval "T$N=\$THROUGHPUT"
}

echo "== stage: 1 backend"
run_stage 1
echo "== stage: 2 backends"
run_stage 2
echo "== stage: 3 backends"
run_stage 3

SPEEDUP="$(awk "BEGIN{printf \"%.3f\", $T3 / $T1}")"
CHECKED=false
if [ "$NUMCPU" -gt 1 ]; then
	CHECKED=true
	PASS="$(awk "BEGIN{print ($SPEEDUP >= $MIN_SPEEDUP) ? 1 : 0}")"
	if [ "$PASS" -ne 1 ]; then
		echo "FAIL: 3-backend throughput is only ${SPEEDUP}x of 1 backend (want >= $MIN_SPEEDUP)" >&2
		exit 1
	fi
else
	echo "NOTICE: numcpu=1, skipping the >=${MIN_SPEEDUP}x scaling assertion (three backends time-slice one core); routed/batch counters and per-backend cache hit rates above are the fleet evidence"
fi

{
	echo "{"
	echo "  \"benchmark\": \"pdegw fleet throughput, 1/2/3 pdeserved backends\","
	echo "  \"numcpu\": $NUMCPU,"
	echo "  \"offered_rate_rps_per_shape\": $RATE,"
	echo "  \"shapes\": 3,"
	echo "  \"min_speedup\": $MIN_SPEEDUP,"
	echo "  \"speedup_checked\": $CHECKED,"
	echo "  \"speedup_3v1\": $SPEEDUP,"
	echo "  \"stages\": ["
	sed 's/^/  /;$ s/$/,/' "$TMP/stage1.json"
	sed 's/^/  /;$ s/$/,/' "$TMP/stage2.json"
	sed 's/^/  /' "$TMP/stage3.json"
	echo "  ]"
	echo "}"
} >"$OUT"

echo "wrote $OUT (speedup 3v1 = ${SPEEDUP}x, checked=$CHECKED)"
