#!/bin/sh
# Cluster smoke: boot three pdeserved backends and a pdegw gateway, drive
# load through the gateway, SIGKILL one backend mid-run, and assert the
# fleet plane actually worked — zero 5xx across the whole run, a recorded
# failover and eviction, the killed backend's circuit breaker walking
# open → half-open → closed around the kill and restart, the ring
# re-adding the restarted backend, batch metrics moving, warm cache hits
# on the pinned backends, a bounded retry budget refusing failovers with
# 429 (never 5xx) once exhausted, and a clean SIGTERM drain of the
# gateway. Run from the repository root; also available as
# `make cluster-smoke`.
#
# Env knobs (defaults are CI-sized):
#   SMOKE_GW_ADDR    gateway address    (default 127.0.0.1:18090)
#   SMOKE_BASE_PORT  first backend port (default 18091)
#   SMOKE_RATE       offered rps        (default 120)
#   SMOKE_DURATION   per-stage load     (default 3s)
set -eu

cd "$(dirname "$0")/.."

GW_ADDR="${SMOKE_GW_ADDR:-127.0.0.1:18090}"
BASE_PORT="${SMOKE_BASE_PORT:-18091}"
RATE="${SMOKE_RATE:-120}"
DURATION="${SMOKE_DURATION:-3s}"
TMP="$(mktemp -d)"
B1_PORT="$BASE_PORT"
B2_PORT=$((BASE_PORT + 1))
B3_PORT=$((BASE_PORT + 2))
GW2_ADDR="127.0.0.1:$((BASE_PORT + 8))"
DEAD_URL="http://127.0.0.1:$((BASE_PORT + 9))" # nothing ever listens here
trap 'kill "$GW_PID" "$GW2_PID" "$B1_PID" "$B2_PID" "$B3_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT
GW2_PID=""

echo "== build"
go build -o "$TMP/pdeserved" ./cmd/pdeserved
go build -o "$TMP/pdegw" ./cmd/pdegw
go build -o "$TMP/pdeload" ./cmd/pdeload

wait_healthy() { # url logfile
	i=0
	until curl -fsS "$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "$1 never became healthy" >&2
			cat "$2" >&2
			exit 1
		fi
		sleep 0.1
	done
}

echo "== boot 3 pdeserved backends on ports $B1_PORT-$B3_PORT"
"$TMP/pdeserved" -addr "127.0.0.1:$B1_PORT" -debug-addr "" >"$TMP/b1.log" 2>&1 &
B1_PID=$!
"$TMP/pdeserved" -addr "127.0.0.1:$B2_PORT" -debug-addr "" >"$TMP/b2.log" 2>&1 &
B2_PID=$!
"$TMP/pdeserved" -addr "127.0.0.1:$B3_PORT" -debug-addr "" >"$TMP/b3.log" 2>&1 &
B3_PID=$!
wait_healthy "http://127.0.0.1:$B1_PORT" "$TMP/b1.log"
wait_healthy "http://127.0.0.1:$B2_PORT" "$TMP/b2.log"
wait_healthy "http://127.0.0.1:$B3_PORT" "$TMP/b3.log"

BACKENDS="http://127.0.0.1:$B1_PORT,http://127.0.0.1:$B2_PORT,http://127.0.0.1:$B3_PORT"
echo "== boot pdegw on $GW_ADDR fronting $BACKENDS"
"$TMP/pdegw" -addr "$GW_ADDR" -backends "$BACKENDS" \
	-probe-interval 200ms -breaker-threshold 1 -breaker-open-probes 1 \
	>"$TMP/gw.log" 2>&1 &
GW_PID=$!
wait_healthy "http://$GW_ADDR" "$TMP/gw.log"

echo "== stage 1: warm the fleet through the gateway"
"$TMP/pdeload" -targets "http://$GW_ADDR" -rate "$RATE" -duration "$DURATION" \
	-problem burgers-steady -n 5 -seed-spread 1 \
	-re 1.0 -re-step 0.01 -re-count 4 -out "$TMP/stage1.json"
grep -q '"server_5xx": 0' "$TMP/stage1.json" || {
	echo "stage 1 saw 5xx responses" >&2
	cat "$TMP/stage1.json" >&2
	exit 1
}

# One problem shape pins to exactly one backend; kill that one, so the
# stage provably exercises the failover walk rather than an idle member.
OWNER_PORT="$(curl -fsS "http://$GW_ADDR/metrics" |
	grep '^pdegw_backend_routed_total{' | sort -t' ' -k2 -rn | head -1 |
	sed 's/.*127\.0\.0\.1:\([0-9]*\)".*/\1/')"
case "$OWNER_PORT" in
"$B1_PORT") OWNER_PID=$B1_PID ;;
"$B2_PORT") OWNER_PID=$B2_PID ;;
"$B3_PORT") OWNER_PID=$B3_PID ;;
*)
	echo "could not identify the pinned backend (got '$OWNER_PORT')" >&2
	exit 1
	;;
esac

echo "== stage 2: SIGKILL the pinned backend (port $OWNER_PORT) mid-load"
(sleep 1 && kill -KILL "$OWNER_PID" 2>/dev/null || true) &
KILLER_PID=$!
"$TMP/pdeload" -targets "http://$GW_ADDR" -rate "$RATE" -duration "$DURATION" \
	-problem burgers-steady -n 5 -seed-spread 1 \
	-re 1.0 -re-step 0.01 -re-count 4 -out "$TMP/stage2.json"
wait "$KILLER_PID" 2>/dev/null || true

echo "== zero-5xx: killing a backend never surfaced a server error"
grep -q '"server_5xx": 0' "$TMP/stage2.json" || {
	echo "gateway surfaced 5xx while a backend died" >&2
	cat "$TMP/stage2.json" >&2
	exit 1
}
grep -q '"transport_errors": 0' "$TMP/stage2.json" || {
	echo "gateway dropped connections while a backend died" >&2
	cat "$TMP/stage2.json" >&2
	exit 1
}

echo "== gateway metrics: failover, eviction and batching all moved"
METRICS="$(curl -fsS "http://$GW_ADDR/metrics")"
echo "$METRICS" | grep -q '^pdegw_failovers_total [1-9]' || {
	echo "no failovers counted after the backend kill" >&2
	echo "$METRICS" | grep '^pdegw_' >&2
	exit 1
}
echo "$METRICS" | grep -q '^pdegw_evictions_total [1-9]' || {
	echo "dead backend was never evicted" >&2
	echo "$METRICS" | grep '^pdegw_' >&2
	exit 1
}
echo "$METRICS" | grep -q '^pdegw_batches_total [1-9]' || {
	echo "no batch windows flushed" >&2
	echo "$METRICS" | grep '^pdegw_' >&2
	exit 1
}
echo "$METRICS" | grep '^pdegw_failovers_total\|^pdegw_evictions_total\|^pdegw_readds_total\|^pdegw_batches_total\|^pdegw_batch_deduped_total\|^pdegw_healthy_backends'

echo "== breaker: the killed backend's circuit opened"
echo "$METRICS" | grep 'pdegw_breaker_transitions_total{.*to="open"' | grep -q ' [1-9]' || {
	echo "no breaker opened after the backend kill" >&2
	echo "$METRICS" | grep 'pdegw_breaker' >&2
	exit 1
}

echo "== ring re-add: restart the killed backend on the same port"
"$TMP/pdeserved" -addr "127.0.0.1:$OWNER_PORT" -debug-addr "" >"$TMP/b2b.log" 2>&1 &
OWNER_PID=$!
case "$OWNER_PORT" in
"$B1_PORT") B1_PID=$OWNER_PID ;;
"$B2_PORT") B2_PID=$OWNER_PID ;;
"$B3_PORT") B3_PID=$OWNER_PID ;;
esac
wait_healthy "http://127.0.0.1:$OWNER_PORT" "$TMP/b2b.log"
i=0
until curl -fsS "http://$GW_ADDR/metrics" | grep -q '^pdegw_healthy_backends 3'; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "gateway never re-added the restarted backend" >&2
		curl -fsS "http://$GW_ADDR/cluster" >&2 || true
		exit 1
	fi
	sleep 0.1
done
curl -fsS "http://$GW_ADDR/metrics" | grep -q '^pdegw_readds_total [1-9]' || {
	echo "re-add not counted" >&2
	exit 1
}

echo "== breaker: open -> half-open trial -> closed after the restart"
i=0
until curl -fsS "http://$GW_ADDR/metrics" |
	grep 'pdegw_breaker_transitions_total{.*to="closed"' | grep -q ' [1-9]'; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "breaker never reclosed after the backend restart" >&2
		curl -fsS "http://$GW_ADDR/metrics" | grep 'pdegw_breaker' >&2
		exit 1
	fi
	sleep 0.1
done
BREAKER="$(curl -fsS "http://$GW_ADDR/metrics" | grep 'pdegw_breaker_transitions_total')"
echo "$BREAKER" | grep 'to="half_open"' | grep -q ' [1-9]' || {
	echo "breaker closed without a half-open trial" >&2
	echo "$BREAKER" >&2
	exit 1
}
echo "$BREAKER"

echo "== warm cache: pinned backends served repeats from their caches"
HOT=0
for PORT in "$B1_PORT" "$B2_PORT" "$B3_PORT"; do
	if curl -fsS "http://127.0.0.1:$PORT/metrics" 2>/dev/null |
		grep -q '^pdeserve_cache_hits_total [1-9]'; then
		HOT=$((HOT + 1))
	fi
done
if [ "$HOT" -lt 1 ]; then
	echo "no backend saw cache hits; shape affinity broken" >&2
	exit 1
fi
echo "backends with warm caches: $HOT"

echo "== retry budget: an aux gateway fronting a dead backend spends, then denies"
# Half the shapes pin to the dead URL; each such request burns one failover
# token. With refill disabled and a two-token bucket, the third dead-pinned
# request must be refused with 429 backpressure — never a 5xx.
"$TMP/pdegw" -addr "$GW2_ADDR" \
	-backends "http://127.0.0.1:$B1_PORT,$DEAD_URL" \
	-probe-interval 1h -evict-after 1000000 -breaker-threshold 1000000 \
	-retry-budget -1 -retry-budget-max 2 >"$TMP/gw2.log" 2>&1 &
GW2_PID=$!
wait_healthy "http://$GW2_ADDR" "$TMP/gw2.log"
CODES=""
for N in 4 5 6 7 8 9 10 11 12; do
	CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
		-H 'Content-Type: application/json' \
		-d "{\"problem\":\"burgers-steady\",\"n\":$N,\"seed\":2}" \
		"http://$GW2_ADDR/v1/solve")"
	CODES="$CODES $CODE"
	case "$CODE" in
	200 | 429) ;;
	*)
		echo "budget sweep surfaced status $CODE (want only 200/429):$CODES" >&2
		cat "$TMP/gw2.log" >&2
		exit 1
		;;
	esac
done
echo "sweep codes:$CODES"
GW2_METRICS="$(curl -fsS "http://$GW2_ADDR/metrics")"
echo "$GW2_METRICS" | grep -q '^pdegw_retry_budget_spent_total [1-9]' || {
	echo "no retry-budget token was ever spent" >&2
	echo "$GW2_METRICS" | grep '^pdegw_retry_budget' >&2
	exit 1
}
echo "$GW2_METRICS" | grep -q '^pdegw_retry_budget_denied_total [1-9]' || {
	echo "the exhausted budget never denied a failover" >&2
	echo "$GW2_METRICS" | grep '^pdegw_retry_budget' >&2
	exit 1
}
echo "$GW2_METRICS" | grep '^pdegw_retry_budget'
kill "$GW2_PID" 2>/dev/null || true
GW2_PID=""

echo "== SIGTERM drain of the gateway"
kill -TERM "$GW_PID"
i=0
while kill -0 "$GW_PID" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "gateway did not exit within 10s of SIGTERM" >&2
		exit 1
	fi
	sleep 0.1
done
wait "$GW_PID" 2>/dev/null || {
	echo "gateway exited non-zero on drain" >&2
	cat "$TMP/gw.log" >&2
	exit 1
}
grep -q "drained cleanly" "$TMP/gw.log" || {
	echo "gateway log missing clean-drain marker" >&2
	cat "$TMP/gw.log" >&2
	exit 1
}

echo "OK"
