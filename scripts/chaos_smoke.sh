#!/bin/sh
# Chaos smoke: boot pdeserved with live fault injection (-chaos), drive it
# with analog-seeded load, and assert the degradation ladder absorbs every
# fault — zero 5xx responses, non-zero per-rung fallback counters in
# /metrics, and a clean SIGTERM drain. A fixed -seed keeps the whole fault
# sequence deterministic, so this smoke is reproducible bit for bit.
# Run from the repository root; also available as `make chaos-smoke`.
#
# Env knobs (defaults are CI-sized):
#   SMOKE_ADDR       API address        (default 127.0.0.1:18090)
#   SMOKE_RATE       offered rps        (default 100)
#   SMOKE_DURATION   load duration      (default 5s)
set -eu

cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18090}"
RATE="${SMOKE_RATE:-100}"
DURATION="${SMOKE_DURATION:-5s}"
TMP="$(mktemp -d)"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/pdeserved" ./cmd/pdeserved
go build -o "$TMP/pdeload" ./cmd/pdeload

echo "== boot pdeserved -chaos on $ADDR"
"$TMP/pdeserved" -addr "$ADDR" -debug-addr "" -chaos -seed 7 -seed-gate 0.5 \
	>"$TMP/server.log" 2>&1 &
SRV_PID=$!

# Wait for /healthz, bounded.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "server never became healthy" >&2
		cat "$TMP/server.log" >&2
		exit 1
	fi
	sleep 0.1
done

grep -q "chaos mode" "$TMP/server.log" || {
	echo "server log missing chaos-mode banner" >&2
	cat "$TMP/server.log" >&2
	exit 1
}

echo "== pdeload: $RATE rps of analog-seeded solves for $DURATION"
# 2×2 grids (8 unknowns) fit the prototype accelerator directly, so the
# planned rung is the analog seed — which the chaos faults then sabotage.
"$TMP/pdeload" -url "http://$ADDR" -rate "$RATE" -duration "$DURATION" \
	-problem burgers2d -n 2 -analog -out "$TMP/bench.json"

echo "== zero 5xx"
grep -q '"server_5xx": 0' "$TMP/bench.json" || {
	echo "chaos run leaked server errors:" >&2
	cat "$TMP/bench.json" >&2
	exit 1
}
grep -q '"ok_2xx": 0' "$TMP/bench.json" && {
	echo "chaos run saw no successful responses" >&2
	exit 1
}

echo "== degradation surfaced to clients"
grep -q '"degraded": 0' "$TMP/bench.json" && {
	echo "no response carried the degraded flag under live faults" >&2
	cat "$TMP/bench.json" >&2
	exit 1
}

echo "== metrics: fallback counters live"
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt"
grep -q '^pdeserve_fault_injection_active [1-9]' "$TMP/metrics.txt" || {
	echo "fault-injection gauge is zero in chaos mode" >&2
	exit 1
}
grep -q '^pdeserve_ladder_attempts_total{rung="digital"} [1-9]' "$TMP/metrics.txt" || {
	echo "no digital-rung ladder attempts counted" >&2
	grep '^pdeserve_ladder' "$TMP/metrics.txt" >&2 || true
	exit 1
}
grep -q '^pdeserve_ladder_served_total{rung="digital"} [1-9]' "$TMP/metrics.txt" || {
	echo "no request served from a fallback rung" >&2
	grep '^pdeserve_ladder' "$TMP/metrics.txt" >&2 || true
	exit 1
}
grep -q '^pdeserve_analog_seeds_rejected_total [1-9]' "$TMP/metrics.txt" || {
	echo "seed-quality gate never rejected a faulty seed" >&2
	exit 1
}
grep -Eq '^pdeserve_requests_total\{problem="burgers2d",code="5[0-9][0-9]"\}' "$TMP/metrics.txt" && {
	echo "metrics plane counted 5xx responses" >&2
	exit 1
}

echo "== SIGTERM drain"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "server did not exit within 10s of SIGTERM" >&2
		exit 1
	fi
	sleep 0.1
done
wait "$SRV_PID" 2>/dev/null || {
	echo "server exited non-zero on drain" >&2
	cat "$TMP/server.log" >&2
	exit 1
}
grep -q "drained cleanly" "$TMP/server.log" || {
	echo "server log missing clean-drain marker" >&2
	cat "$TMP/server.log" >&2
	exit 1
}

echo "OK"
