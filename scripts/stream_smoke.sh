#!/bin/sh
# Streaming smoke: boot pdeserved behind a pdegw gateway, drive long
# NDJSON trajectories through the fleet with pdeload -stream, and assert
# the streaming plane end to end:
#   - every offered stream completes with a "done":true summary, zero 5xx
#   - the first frame lands well before the trajectory finishes
#     (TTFF p50 share < 25% of total latency)
#   - the backend's frames-streamed and chord factorization-reuse counters
#     moved, and the gateway's stream-proxy counters moved
#   - both processes drain cleanly on SIGTERM while a stream is in flight
# Run from the repository root; also available as `make stream-smoke`.
#
# Env knobs (defaults are CI-sized):
#   SMOKE_BACKEND    backend address    (default 127.0.0.1:18085)
#   SMOKE_GW         gateway address    (default 127.0.0.1:18095)
#   SMOKE_STEPS      steps per stream   (default 256)
#   SMOKE_RATE       offered streams/s  (default 4)
#   SMOKE_DURATION   load duration      (default 5s)
set -eu

cd "$(dirname "$0")/.."

BACKEND="${SMOKE_BACKEND:-127.0.0.1:18085}"
GW="${SMOKE_GW:-127.0.0.1:18095}"
STEPS="${SMOKE_STEPS:-256}"
RATE="${SMOKE_RATE:-4}"
DURATION="${SMOKE_DURATION:-5s}"
TMP="$(mktemp -d)"
trap 'kill "$GW_PID" "$SRV_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/pdeserved" ./cmd/pdeserved
go build -o "$TMP/pdegw" ./cmd/pdegw
go build -o "$TMP/pdeload" ./cmd/pdeload

echo "== boot pdeserved on $BACKEND, pdegw on $GW"
"$TMP/pdeserved" -addr "$BACKEND" -debug-addr "" >"$TMP/server.log" 2>&1 &
SRV_PID=$!
"$TMP/pdegw" -addr "$GW" -backends "http://$BACKEND" >"$TMP/gateway.log" 2>&1 &
GW_PID=$!

wait_healthy() {
	i=0
	until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "$2 never became healthy" >&2
			cat "$TMP/server.log" "$TMP/gateway.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}
wait_healthy "$BACKEND" "backend"
wait_healthy "$GW" "gateway"

echo "== pdeload -stream: $RATE streams/s x $STEPS steps for $DURATION through the gateway"
# pdeload exits 1 itself when no stream succeeded; that is the liveness gate.
# n=10 (200 unknowns) makes each step cost real solver time, and 256
# steps amortize the first step's full Newton + factorization, so the
# TTFF-vs-total share measures streaming, not HTTP setup overhead.
"$TMP/pdeload" -url "http://$GW" -stream -steps "$STEPS" \
	-problem burgers2d -n 10 -rate "$RATE" -duration "$DURATION" \
	-out "$TMP/stream.json"

json_num() {
	sed -n "s/^.*\"$1\": \([0-9.eE+-]*\).*$/\1/p" "$TMP/stream.json" | head -1
}

echo "== report assertions"
STREAMS="$(json_num streams_done)"
FRAMES="$(json_num frames_total)"
SERVER_5XX="$(json_num server_5xx)"
TTFF_SHARE="$(json_num ttff_share_p50)"
[ -n "$STREAMS" ] && [ "$STREAMS" -ge 1 ] || {
	echo "no stream completed: streams_done=$STREAMS" >&2
	cat "$TMP/stream.json" >&2
	exit 1
}
[ "$FRAMES" = "$((STREAMS * STEPS))" ] || {
	echo "frame count mismatch: $FRAMES frames for $STREAMS streams of $STEPS steps" >&2
	exit 1
}
[ "${SERVER_5XX:-0}" = "0" ] || {
	echo "saw $SERVER_5XX 5xx responses" >&2
	exit 1
}
awk -v s="$TTFF_SHARE" 'BEGIN { exit !(s > 0 && s < 0.25) }' || {
	echo "first frame did not arrive early: ttff_share_p50=$TTFF_SHARE (want < 0.25)" >&2
	exit 1
}

echo "== metrics assertions"
curl -fsS "http://$BACKEND/metrics" >"$TMP/backend.metrics"
for METRIC in pdeserve_frames_streamed_total pdeserve_jacobian_refactorizations_total pdeserve_jacobian_reuses_total; do
	grep -q "^$METRIC [1-9]" "$TMP/backend.metrics" || {
		echo "backend counter $METRIC did not move" >&2
		grep "^$METRIC" "$TMP/backend.metrics" >&2 || true
		exit 1
	}
done
curl -fsS "http://$GW/metrics" >"$TMP/gateway.metrics"
for METRIC in pdegw_streams_proxied_total pdegw_stream_frames_total; do
	grep -q "^$METRIC [1-9]" "$TMP/gateway.metrics" || {
		echo "gateway counter $METRIC did not move" >&2
		exit 1
	}
done
grep -q '^pdegw_requests_total{code="5' "$TMP/gateway.metrics" && {
	echo "gateway answered 5xx:" >&2
	grep '^pdegw_requests_total' "$TMP/gateway.metrics" >&2
	exit 1
}

echo "== SIGTERM drain with a stream in flight"
curl -sS -N -X POST -H 'Content-Type: application/json' \
	-d "{\"problem\":\"burgers2d\",\"n\":8,\"steps\":256,\"seed\":3,\"deadline_ms\":25000}" \
	"http://$GW/v1/stream" -o "$TMP/drain.ndjson" &
CURL_PID=$!
# Let the stream commit (first frames flushed), then drain the gateway and
# the backend while it is still marching.
sleep 0.4
kill -TERM "$GW_PID"
wait "$CURL_PID" || {
	echo "in-flight stream failed during drain" >&2
	exit 1
}
wait_exit() {
	i=0
	while kill -0 "$1" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -ge 300 ]; then
			echo "$2 did not exit within 30s of SIGTERM" >&2
			exit 1
		fi
		sleep 0.1
	done
	wait "$1" 2>/dev/null || {
		echo "$2 exited non-zero on drain" >&2
		cat "$TMP/server.log" "$TMP/gateway.log" >&2
		exit 1
	}
}
wait_exit "$GW_PID" "gateway"
grep -q "drained cleanly" "$TMP/gateway.log" || {
	echo "gateway log missing clean-drain marker" >&2
	cat "$TMP/gateway.log" >&2
	exit 1
}
kill -TERM "$SRV_PID"
wait_exit "$SRV_PID" "backend"
grep -q "drained cleanly" "$TMP/server.log" || {
	echo "backend log missing clean-drain marker" >&2
	cat "$TMP/server.log" >&2
	exit 1
}
LINES="$(wc -l <"$TMP/drain.ndjson")"
[ "$LINES" = "257" ] || {
	echo "drained stream truncated: $LINES lines, want 257 (256 frames + summary)" >&2
	tail -2 "$TMP/drain.ndjson" >&2
	exit 1
}
tail -1 "$TMP/drain.ndjson" | grep -q '"done":true' || {
	echo "drained stream missing its done summary:" >&2
	tail -1 "$TMP/drain.ndjson" >&2
	exit 1
}

echo "OK"
