module hybridpde

go 1.22
