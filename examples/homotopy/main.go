// Homotopy walkthrough: solve the paper's coupled quadratic system
// (Equation 2) by dragging the trivially-known roots of S(ρ)ᵢ = ρᵢ² − 1
// (Equation 3) to the roots of the hard system — first with the digital
// predictor–corrector tracker, then on the analog chip model, which ramps
// the blend λ(t) in continuous time (§3.2, Figure 3).
//
// Run with: go run ./examples/homotopy
package main

import (
	"fmt"
	"log"

	"hybridpde/internal/analog"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
)

func main() {
	hard := pde.Equation2(1.0, -1.0) // ρ₀²+ρ₀+ρ₁ = 1, ρ₁²+ρ₁−ρ₀ = −1
	simple := nonlin.SquareRootsSimple(2)
	starts := [][]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}

	fmt.Println("digital homotopy continuation (predictor-corrector):")
	for _, s := range starts {
		res, err := nonlin.Homotopy(nil, simple, hard, s, nonlin.HomotopyOptions{Steps: 80})
		if err != nil {
			fmt.Printf("  start (%+.0f,%+.0f): %v\n", s[0], s[1], err)
			continue
		}
		fmt.Printf("  start (%+.0f,%+.0f) → root (%+.6f, %+.6f), %d λ-steps, %d Newton iters, %d fold hops\n",
			s[0], s[1], res.U[0], res.U[1], res.LambdaSteps, res.NewtonIters, res.FoldHops)
	}

	fmt.Println("\nanalog chip homotopy (continuous λ ramp):")
	accel := analog.NewPrototype(1)
	for _, s := range starts {
		sol, err := accel.SolveHomotopy(
			analog.PolySystem{Degree: 2, System: simple},
			analog.PolySystem{Degree: 2, System: hard},
			s,
			analog.HomotopyOptions{Solve: analog.SolveOptions{DynamicRange: 3, TMaxTau: 600}},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  start (%+.0f,%+.0f) → (%+.4f, %+.4f), settled in %.0f τ (%.3g s), residual %.3g\n",
			s[0], s[1], sol.U[0], sol.U[1], sol.SettleTau, sol.SettleSeconds, sol.Residual)
	}
	fmt.Println("\nevery start lands on a genuine root — compare with plain Newton,")
	fmt.Println("whose basins leave whole regions of initial conditions stranded (Figure 3).")
}
