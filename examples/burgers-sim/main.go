// Burgers-sim: a time-dependent 2-D viscous Burgers' simulation that
// advances the fields through several implicit Crank–Nicolson steps, each
// solved with the hybrid analog-digital pipeline. A decaying vortex-like
// initial condition diffuses over time; the example prints per-step kinetic
// energy and the cost split between the analog and digital stages.
//
// Run with: go run ./examples/burgers-sim
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"hybridpde/internal/analog"
	"hybridpde/internal/core"
	"hybridpde/internal/pde"
)

const (
	gridN = 4   // 4×4 interior grid: decomposes onto the 2×2-capacity board
	re    = 0.8 // mildly nonlinear regime
	steps = 5
)

func main() {
	problem, err := pde.NewBurgers(gridN, re)
	if err != nil {
		log.Fatal(err)
	}
	// Vortex-like initial condition.
	for i := 0; i < gridN; i++ {
		for j := 0; j < gridN; j++ {
			x := (float64(i) + 0.5) / gridN
			y := (float64(j) + 0.5) / gridN
			problem.UPrev[i*gridN+j] = math.Sin(2*math.Pi*x) * math.Cos(2*math.Pi*y)
			problem.VPrev[i*gridN+j] = -math.Cos(2*math.Pi*x) * math.Sin(2*math.Pi*y)
		}
	}

	accel := analog.NewPrototype(1) // 8 variables: each 4×4 step decomposes
	// One Options value reused across steps: the Workspace keeps the Newton
	// buffers and LU factorization storage alive, so the steady-state time
	// loop stops allocating after the first step.
	opts := core.Options{
		Seeder:    core.AnalogSeeder(accel),
		Workspace: core.NewWorkspace(),
	}
	ctx := context.Background()

	energy := func() float64 {
		s := 0.0
		for k := range problem.UPrev {
			s += problem.UPrev[k]*problem.UPrev[k] + problem.VPrev[k]*problem.VPrev[k]
		}
		return s / 2
	}

	fmt.Printf("step  kinetic-energy  analog-s     digital-iters  subdomains\n")
	fmt.Printf("   0  %14.6f\n", energy())
	for s := 1; s <= steps; s++ {
		rep, err := core.Solve(ctx, problem, opts)
		if err != nil {
			log.Fatalf("step %d: %v", s, err)
		}
		if err := problem.Advance(rep.U); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %14.6f  %10.3g  %13d  %10d\n",
			s, energy(), rep.AnalogSeconds, rep.Digital.Iterations, rep.Subproblems)
	}
	fmt.Println("\nkinetic energy decays monotonically: the viscous term damps the")
	fmt.Println("vortex while the hybrid solver handles each implicit step.")
}
