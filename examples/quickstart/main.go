// Quickstart: solve one Crank–Nicolson step of the 2-D viscous Burgers'
// equation with the hybrid analog-digital pipeline.
//
// The flow mirrors the paper's programming sample (Figure 4): bring up the
// analog fabric, calibrate it, load a problem, let the continuous Newton
// circuit settle, and polish the approximate analog answer with a digital
// Newton solver.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"hybridpde/internal/analog"
	"hybridpde/internal/core"
	"hybridpde/internal/pde"
)

func main() {
	// A 2×2 Burgers step problem — exactly what the physical two-chip
	// prototype board can hold (one scalar variable per tile).
	rng := rand.New(rand.NewSource(7))
	problem, err := pde.RandomBurgers(2, 1.0, 3.0, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Power up and calibrate the analog accelerator model
	// (fabric := analog.NewFabric(...); fabric.Calibrate() underneath).
	accel := analog.NewPrototype(1)
	fmt.Printf("analog board: %d scalar variables, %.2f mm², %.2f mW peak\n",
		accel.Capacity(), accel.AreaMM2(), 1e3*accel.PeakPowerWatts(accel.Capacity()))

	// Hybrid solve: analog seed → digital Newton polish. The pipeline is
	// generic over problem.SparseSystem; AnalogSeeder picks a direct or
	// red-black decomposed analog stage by capacity.
	opts := core.Options{Seeder: core.AnalogSeeder(accel)}
	report, err := core.Solve(context.Background(), problem, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nanalog stage:  %.3g s, %.3g J, seed residual ‖F‖ = %.3g\n",
		report.AnalogSeconds, report.AnalogEnergyJ, report.SeedResidual)
	fmt.Printf("digital stage: %d Newton iterations at damping %.2f, final ‖F‖ = %.3g\n",
		report.Digital.Iterations, report.Digital.DampingUsed, report.FinalResidual)
	fmt.Printf("\nsolution fields (u, v per node):\n")
	for i := 0; i < problem.N; i++ {
		for j := 0; j < problem.N; j++ {
			k := 2 * (i*problem.N + j)
			fmt.Printf("  node (%d,%d): u = %+.6f  v = %+.6f\n", i, j, report.U[k], report.U[k+1])
		}
	}
}
