// Fractal: render the convergence basins of z³ = 1 (the paper's Figure 2
// tutorial problem) twice — once with the classical digital Newton method,
// whose basins interleave fractally, and once with the continuous Newton
// method running on the analog accelerator model, whose basins are
// contiguous. Writes two PPM images into the working directory.
//
// Run with: go run ./examples/fractal
package main

import (
	"fmt"
	"log"
	"math"

	"hybridpde/internal/analog"
	"hybridpde/internal/img"
	"hybridpde/internal/la"
	"hybridpde/internal/nonlin"
)

const pixels = 96 // modest default so the example runs in seconds

func main() {
	cubic := analog.PolySystem{
		Degree: 3,
		System: nonlin.FuncSystem{
			N: 2,
			F: func(u, f []float64) error {
				re, im := u[0], u[1]
				f[0] = re*re*re - 3*re*im*im - 1
				f[1] = 3*re*re*im - im*im*im
				return nil
			},
			J: func(u []float64, jac *la.Dense) error {
				re, im := u[0], u[1]
				a := 3 * (re*re - im*im)
				b := 6 * re * im
				jac.Set(0, 0, a)
				jac.Set(0, 1, -b)
				jac.Set(1, 0, b)
				jac.Set(1, 1, a)
				return nil
			},
		},
	}
	roots := [3][2]float64{{1, 0}, {-0.5, math.Sqrt(3) / 2}, {-0.5, -math.Sqrt(3) / 2}}
	classify := func(u []float64, tol float64) int {
		for k, r := range roots {
			if math.Hypot(u[0]-r[0], u[1]-r[1]) <= tol {
				return k
			}
		}
		return -1
	}

	accel := analog.NewPrototype(1)
	analogIm := img.New(pixels, pixels)
	digitalIm := img.New(pixels, pixels)
	for py := 0; py < pixels; py++ {
		imag := 2 - 4*float64(py)/float64(pixels-1)
		for px := 0; px < pixels; px++ {
			re := -2 + 4*float64(px)/float64(pixels-1)
			u0 := []float64{re, imag}

			sol, err := accel.Solve(cubic, u0, analog.SolveOptions{DynamicRange: 2, TMaxTau: 120})
			c := img.NoConverge
			if err == nil && sol.Converged {
				if k := classify(sol.U, 0.45); k >= 0 {
					c = img.RootPalette(k)
				} else {
					c = img.WrongPink
				}
			}
			analogIm.Set(px, py, c)

			res, err := nonlin.Newton(nil, cubic, u0, nonlin.NewtonOptions{Tol: 1e-10, MaxIter: 60})
			c = img.NoConverge
			if err == nil && res.Converged {
				if k := classify(res.U, 1e-3); k >= 0 {
					c = img.RootPalette(k)
				}
			}
			digitalIm.Set(px, py, c)
		}
	}
	if err := analogIm.WritePPM("basins_analog.ppm"); err != nil {
		log.Fatal(err)
	}
	if err := digitalIm.WritePPM("basins_digital.ppm"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote basins_analog.ppm (boundary fraction %.4f — contiguous)\n", analogIm.BoundaryFraction())
	fmt.Printf("wrote basins_digital.ppm (boundary fraction %.4f — fractal)\n", digitalIm.BoundaryFraction())
}
