// Method-of-lines: run the accelerator the way 1960s hybrid computers did
// (paper §4.3, §8) — map the space-discretised PDE du/dt = L(u) directly
// onto the integrators and let the analog circuit evolve it in continuous
// time, instead of using the continuous-Newton root-finding mode.
//
// The demo integrates a diffusion-dominated 2×2 Burgers system on the
// prototype board model, samples the analog waveform through the observer
// (the role of the continuous-time ADCs), and compares the final state with
// a high-accuracy digital integration of the same ODE system.
//
// Run with: go run ./examples/methodoflines
package main

import (
	"fmt"
	"log"
	"math"

	"hybridpde/internal/analog"
	"hybridpde/internal/la"
	"hybridpde/internal/ode"
	"hybridpde/internal/pde"
)

func main() {
	problem, err := pde.NewBurgers(2, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	problem.UPrev[0], problem.UPrev[3] = 0.9, -0.7
	problem.VPrev[1], problem.VPrev[2] = -0.8, 0.6

	rhs := problem.SemiDiscreteRHS()
	sys := func(t float64, y, dydt []float64) error { return rhs(t, y, dydt) }
	u0 := problem.InitialGuess()

	accel := analog.NewPrototype(1)
	fmt.Println("analog waveform samples (‖u‖ vs τ):")
	lastPrint := -1.0
	mol, err := accel.IntegrateODE(sys, problem.Dim(), u0, analog.MOLOptions{
		DynamicRange: 1.5,
		THorizon:     3.0,
		Observer: func(tau float64, u []float64) {
			if tau-lastPrint >= 0.5 {
				fmt.Printf("  τ = %4.1f   ‖u‖ = %.4f\n", tau, la.Norm2(u))
				lastPrint = tau
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	ref, err := ode.DormandPrince(sys, u0, 0, 3.0, ode.AdaptiveOptions{AbsTol: 1e-10, RelTol: 1e-9})
	if err != nil {
		log.Fatal(err)
	}

	maxDev := 0.0
	for i := range mol.U {
		if d := math.Abs(mol.U[i] - ref.Y[i]); d > maxDev {
			maxDev = d
		}
	}
	fmt.Printf("\nanalog final state (τ = %.1f, %.3g s wall, %.3g J):\n  %v\n",
		mol.TauReached, mol.WallSeconds, mol.EnergyJoules, mol.U)
	fmt.Printf("digital reference:\n  %v\n", ref.Y)
	fmt.Printf("max deviation: %.4f (hardware mismatch + 8-bit readout)\n", maxDev)
	fmt.Println("\nthe paper's partitioning instead keeps time stepping digital and")
	fmt.Println("offloads only the per-step nonlinear solve — see examples/quickstart.")
}
