// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see DESIGN.md §3 for the experiment index). Each
// benchmark runs the corresponding experiment driver end to end and reports
// the headline quantity of that table/figure as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. Benchmarks use the quick configuration
// by default; set HYBRIDPDE_FULL=1 to run at full paper scale.
package main

import (
	"context"
	"os"
	"testing"

	"hybridpde/internal/exp"
)

func benchCfg() exp.Config {
	return exp.Config{Quick: os.Getenv("HYBRIDPDE_FULL") == "", Seed: 1}
}

// BenchmarkTable1WorkloadProfile reproduces Table 1: the share of PDE
// solver runtime spent in the equation-solving kernel.
func BenchmarkTable1WorkloadProfile(b *testing.B) {
	var last exp.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = exp.Table1(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*last.Rows[0].Report.KernelFraction, "bwaves-kernel-%")
	b.ReportMetric(100*last.Rows[3].Report.KernelFraction, "cook-kernel-%")
}

// BenchmarkTable2Character reproduces Table 2: PDE character vs Reynolds
// number.
func BenchmarkTable2Character(b *testing.B) {
	var last exp.Table2Result
	for i := 0; i < b.N; i++ {
		r, err := exp.Table2(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	hyperbolic := 0
	for _, c := range last.Rows {
		if c.Nonlinearity == "quasilinear" {
			hyperbolic++
		}
	}
	b.ReportMetric(float64(hyperbolic), "hyperbolic-rows")
}

// BenchmarkTable3Budget reproduces Table 3: the per-variable analog
// component budget.
func BenchmarkTable3Budget(b *testing.B) {
	var area float64
	for i := 0; i < b.N; i++ {
		r := exp.Table3(context.Background(), benchCfg())
		area = r.Budget.Totals().AreaMM2
	}
	b.ReportMetric(area, "mm2-per-variable")
}

// BenchmarkTable4Scale reproduces Table 4: scaled-up accelerator area and
// power.
func BenchmarkTable4Scale(b *testing.B) {
	var r exp.Table4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Table4(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rows[4].AreaMM2, "mm2-16x16")
	b.ReportMetric(r.Rows[4].PowerMW, "mW-16x16")
}

// BenchmarkFig2Basins reproduces Figure 2: continuous-Newton basins on the
// chip vs fractal classical-Newton basins.
func BenchmarkFig2Basins(b *testing.B) {
	var r exp.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig2(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AnalogBoundary, "chip-boundary-frac")
	b.ReportMetric(r.DigitalBoundary, "digital-boundary-frac")
}

// BenchmarkFig3Homotopy reproduces Figure 3: homotopy continuation basins.
func BenchmarkFig3Homotopy(b *testing.B) {
	var r exp.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig3(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	total := float64(r.Pixels * r.Pixels)
	b.ReportMetric(100*float64(r.PlainWrong)/total, "plain-wrong-%")
	b.ReportMetric(100*float64(r.HomotopyWrong)/total, "homotopy-wrong-%")
}

// BenchmarkFig6ErrorDistribution reproduces Figure 6: the analog solution
// error distribution (paper: 5.38 % total RMS).
func BenchmarkFig6ErrorDistribution(b *testing.B) {
	var r exp.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig6(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TotalRMSPct, "total-RMS-%")
}

// BenchmarkFig7Scaling reproduces Figure 7: equal-accuracy solution time vs
// Reynolds number and grid size.
func BenchmarkFig7Scaling(b *testing.B) {
	var r exp.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig7(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: the largest-grid speedup observed (paper: ≈100×).
	best := 0.0
	for _, p := range r.Points {
		if p.AnalogMeanS > 0 {
			if s := p.DigitalMeanS / p.AnalogMeanS; s > best {
				best = s
			}
		}
	}
	b.ReportMetric(best, "max-analog-speedup")
}

// BenchmarkFig8Seeding reproduces Figure 8: baseline vs analog-seeded
// solution time across the Reynolds sweep.
func BenchmarkFig8Seeding(b *testing.B) {
	var r exp.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig8(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := r.Points[len(r.Points)-1]
	if last.SeededMeanS > 0 {
		b.ReportMetric(last.BaselineMeanS/last.SeededMeanS, "speedup-at-topRe")
	}
}

// BenchmarkFig9GPU reproduces Figure 9: GPU-scale time and energy
// reductions (paper: 5.7× time, 11.6× energy at 32×32).
func BenchmarkFig9GPU(b *testing.B) {
	var r exp.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Fig9(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	big := r.Sizes[len(r.Sizes)-1]
	b.ReportMetric(big.TimeReduction, "time-reduction-x")
	b.ReportMetric(big.EnergyReduction, "energy-reduction-x")
}
