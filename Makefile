GO ?= go

.PHONY: all build test race vet fmt lint lint-baseline fuzz check bench bench-core serve serve-smoke chaos-smoke cache-smoke cluster-smoke scale-smoke stream-smoke bench-serve bench-cluster bench-stream

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Project-specific static analysis: the eleven pdevet rules (internal/lint)
# guarding the repo's numerical, hot-path and concurrency invariants. The
# committed .pdevet-baseline is the ledger of tolerated findings (empty on a
# clean tree); pdevet fails on anything not in it AND on stale entries, so
# the baseline can only shrink together with the code it excuses. Zero exit
# here means: no unbaselined findings, no stale baseline entries, no unused
# //pdevet:allow annotations.
lint:
	$(GO) run ./cmd/pdevet -baseline .pdevet-baseline ./...

# Regenerate the baseline ledger. Only run this alongside the change that
# justifies it — CI diffs will show exactly which debt was added or paid.
lint-baseline:
	$(GO) run ./cmd/pdevet -write-baseline .pdevet-baseline ./...

# Short fuzz smoke over the solver and netlist-parser targets; CI-sized.
# Longer local runs: go test -fuzz FuzzBandLU -fuzztime 60s ./internal/la/
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolveTridiagonal -fuzztime 3s ./internal/la/
	$(GO) test -run '^$$' -fuzz FuzzBandLU -fuzztime 3s ./internal/la/
	$(GO) test -run '^$$' -fuzz FuzzCSR -fuzztime 3s ./internal/la/
	$(GO) test -run '^$$' -fuzz FuzzParseNetlist -fuzztime 3s ./internal/analog/
	$(GO) test -run '^$$' -fuzz FuzzParseFaultSpec -fuzztime 3s ./internal/fault/
	$(GO) test -run '^$$' -fuzz FuzzCacheKey -fuzztime 3s ./internal/cache/

# Full verification gate: build + vet + pdevet + formatting + race-enabled
# tests + fuzz smoke.
check:
	./scripts/check.sh

# Allocation benchmarks guarding the time-stepping hot path (the steady
# Newton step, serial and parallel, must report 0 allocs/op).
bench:
	$(GO) test ./internal/core/ -run XXX -bench 'BenchmarkNewtonSparseSteadyStep$$|BenchmarkNewtonSparseSteadyStepParallel|BenchmarkHybridTimeLoop' -benchtime 100x

# Regenerate the committed core benchmark baseline (BENCH_core.json):
# warm Newton solves and time loops across grid sizes and worker counts,
# with the cross-procs checksum gate, the parallel-speedup floor (skipped
# with a visible notice on single-CPU machines, where a speedup is
# unmeasurable) and the chord-mode factorization-reuse floor (machine-
# independent: it compares two configurations on the same machine). Short
# mode keeps it CI-sized; run `go run ./cmd/pdebench` directly for the
# full size sweep.
bench-core:
	$(GO) run ./cmd/pdebench -short -min-speedup 1.1 -min-reuse-speedup 1.3 -out BENCH_core.json

# Run the solve service locally (Ctrl-C drains in-flight solves).
serve:
	$(GO) run ./cmd/pdeserved

# End-to-end service smoke: boot pdeserved, drive it with pdeload, assert
# 2xx traffic and a clean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Chaos smoke: boot pdeserved -chaos (live fault injection), drive analog
# load, assert zero 5xx and live degradation-ladder counters.
chaos-smoke:
	./scripts/chaos_smoke.sh

# Cluster smoke: boot three pdeserved backends behind a pdegw gateway,
# drive load through the fleet, SIGKILL the pinned backend mid-run, and
# assert zero 5xx, a counted failover/eviction, ring re-add on restart,
# warm per-backend caches, and a clean gateway drain.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Scale smoke: boot pdeserved with an autoscaler range, ramp open-loop load
# through it, and assert the worker pool provably adapts — the workers
# gauge rises off the floor and settles back, scale-ups are counted,
# Workers×SolveProcs stays within GOMAXPROCS, responses stay bit-identical
# to a fixed-size server, zero 5xx, and a clean SIGTERM drain.
scale-smoke:
	./scripts/scale_smoke.sh

# Regenerate the committed fleet benchmark (BENCH_cluster.json): gateway
# throughput with 1, 2 and 3 backends plus the routed/batch counters and
# per-backend cache hit rates. The scaling assertion is skipped with a
# NOTICE on single-CPU machines.
bench-cluster:
	./scripts/bench_cluster.sh

# Streaming smoke: boot pdeserved behind pdegw, drive 256-step NDJSON
# trajectories through the gateway with pdeload -stream, and assert the
# streaming plane end to end — every stream completes with a done summary,
# the first frame lands well before the trajectory finishes (TTFF share
# < 25%), the frames-streamed and factorization-reuse counters move, zero
# 5xx, and both processes drain cleanly on SIGTERM while a stream is in
# flight.
stream-smoke:
	./scripts/stream_smoke.sh

# Cache smoke: boot pdeserved with the solve cache on, replay identical and
# near-identical load, assert nonzero cache/warm hits, byte-identical
# bodies on exact repeats, and a clean drain.
cache-smoke:
	./scripts/cache_smoke.sh

# Regenerate the committed service benchmark (BENCH_serve.json): 400 rps of
# repeated parameter-sweep steady solves for 8 s against a freshly-booted
# local server with the solve cache on. The report carries the cache's
# cold-versus-repeat latency split and hit counters alongside the overall
# percentiles.
bench-serve:
	$(GO) build -o /tmp/pdeserved ./cmd/pdeserved
	$(GO) build -o /tmp/pdeload ./cmd/pdeload
	/tmp/pdeserved -addr 127.0.0.1:18080 -debug-addr "" & \
	SRV=$$!; sleep 1; \
	/tmp/pdeload -url http://127.0.0.1:18080 -rate 400 -duration 8s \
		-problem burgers-steady -n 5 -seed-spread 3 \
		-re 1.0 -re-step 0.01 -re-count 4 -out BENCH_serve.json; \
	RC=$$?; kill -TERM $$SRV; wait $$SRV; exit $$RC

# Regenerate the committed streaming benchmark (BENCH_stream.json):
# 256-step transient trajectories streamed as NDJSON from a freshly-booted
# local server. The headline numbers are time-to-first-frame (p50/p99)
# against the total-trajectory percentiles — the TTFF share is the
# streaming win — plus frames/sec throughput.
bench-stream:
	$(GO) build -o /tmp/pdeserved ./cmd/pdeserved
	$(GO) build -o /tmp/pdeload ./cmd/pdeload
	/tmp/pdeserved -addr 127.0.0.1:18080 -debug-addr "" & \
	SRV=$$!; sleep 1; \
	/tmp/pdeload -url http://127.0.0.1:18080 -stream -steps 256 \
		-problem burgers2d -n 10 -rate 4 -duration 8s -seed-spread 8 \
		-out BENCH_stream.json; \
	RC=$$?; kill -TERM $$SRV; wait $$SRV; exit $$RC
