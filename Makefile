GO ?= go

.PHONY: all build test race vet fmt check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Full verification gate: build + vet + formatting + race-enabled tests.
check:
	./scripts/check.sh

# Allocation benchmarks guarding the time-stepping hot path (the steady
# Newton step must report 0 allocs/op).
bench:
	$(GO) test ./internal/core/ -run XXX -bench 'BenchmarkNewtonSparseSteadyStep|BenchmarkHybridTimeLoop' -benchtime 100x
