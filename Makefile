GO ?= go

.PHONY: all build test race vet fmt lint fuzz check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Project-specific static analysis: the six pdevet rules (internal/lint)
# guarding the repo's numerical and hot-path invariants.
lint:
	$(GO) run ./cmd/pdevet ./...

# Short fuzz smoke over the solver and netlist-parser targets; CI-sized.
# Longer local runs: go test -fuzz FuzzBandLU -fuzztime 60s ./internal/la/
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSolveTridiagonal -fuzztime 3s ./internal/la/
	$(GO) test -run '^$$' -fuzz FuzzBandLU -fuzztime 3s ./internal/la/
	$(GO) test -run '^$$' -fuzz FuzzCSR -fuzztime 3s ./internal/la/
	$(GO) test -run '^$$' -fuzz FuzzParseNetlist -fuzztime 3s ./internal/analog/

# Full verification gate: build + vet + pdevet + formatting + race-enabled
# tests + fuzz smoke.
check:
	./scripts/check.sh

# Allocation benchmarks guarding the time-stepping hot path (the steady
# Newton step must report 0 allocs/op).
bench:
	$(GO) test ./internal/core/ -run XXX -bench 'BenchmarkNewtonSparseSteadyStep|BenchmarkHybridTimeLoop' -benchtime 100x
