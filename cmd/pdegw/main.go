// Command pdegw runs the fleet gateway (internal/cluster) in front of N
// pdeserved backends.
//
// Usage:
//
//	pdegw -backends http://127.0.0.1:18081,http://127.0.0.1:18082 \
//	      [-addr :8090] [-vnodes 64] [-max-grid N] [-max-steps N]
//	      [-probe-interval D]
//	      [-probe-timeout D] [-evict-after N] [-backoff-max N]
//	      [-batch-window D] [-max-batch N] [-drain-timeout D]
//	      [-breaker-threshold N] [-breaker-open-probes N]
//	      [-retry-budget F] [-retry-budget-max F]
//	      [-timeout D] [-max-timeout D]
//
// The gateway serves POST /v1/solve (shape-affine consistent-hash routed,
// same-shape batched, ring-successor failover), POST /v1/stream (same
// routing, batching bypassed, flush-through NDJSON relay, failover only
// before the first byte), GET /v1/problems (proxied
// to a healthy backend), GET /healthz (readiness: not draining and at
// least one healthy backend), GET /livez, GET /metrics (the pdegw_*
// metrics plane) and GET /cluster (membership snapshot). On
// SIGINT/SIGTERM the gateway stops admitting work (healthz flips to 503),
// relays every admitted request to completion, and exits 0; requests
// still in flight past -drain-timeout are abandoned and the exit code
// is 1. Backends are never drained by the gateway — kill them directly.
//
// Failure isolation: each backend has a circuit breaker (closed → open
// after -breaker-threshold consecutive failures → half-open trial after
// -breaker-open-probes prober sweeps), and failover retries draw from a
// token bucket refilled at -retry-budget tokens per primary dispatch
// (negative disables refill). An exhausted budget answers 429, never a
// 5xx. The remaining request deadline is forwarded to backends per
// attempt via the X-Pde-Deadline-Budget header.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybridpde/internal/cluster"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "gateway listen address")
		backends      = flag.String("backends", "", "comma-separated pdeserved base URLs (required)")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per backend on the ring (0 = default 64)")
		maxGrid       = flag.Int("max-grid", 12, "largest 2-D grid size a request may ask for (mirror the backends)")
		maxSteps      = flag.Int("max-steps", 0, "cap on a stream's step count, mirroring the backends (0 = default 256)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "health probe period")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "per-probe round-trip bound")
		evictAfter    = flag.Int("evict-after", 1, "consecutive failures that evict a backend")
		backoffMax    = flag.Int("backoff-max", 16, "re-add probe backoff cap, in probe intervals")
		batchWindow   = flag.Duration("batch-window", 2*time.Millisecond, "same-shape coalescing window (negative disables batching)")
		maxBatch      = flag.Int("max-batch", 8, "largest same-shape batch; a full window flushes early")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		breakerThreshold  = flag.Int("breaker-threshold", 0, "consecutive failures that open a backend's circuit breaker (0 = default 3)")
		breakerOpenProbes = flag.Int("breaker-open-probes", 0, "prober sweeps an open breaker waits before its half-open trial (0 = default 2)")
		retryBudget       = flag.Float64("retry-budget", 0, "retry tokens deposited per primary dispatch (0 = default 0.1, negative disables refill)")
		retryBudgetMax    = flag.Float64("retry-budget-max", 0, "retry token bucket cap and starting balance (0 = default 32)")
		timeout           = flag.Duration("timeout", 0, "default request deadline when the body carries no deadline_ms (0 = default 5s)")
		maxTimeout        = flag.Duration("max-timeout", 0, "clamp on client-supplied deadlines (0 = default 30s)")
	)
	flag.Parse()

	urls, err := parseBackends(*backends)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdegw:", err)
		os.Exit(2)
	}

	g, err := cluster.New(cluster.Config{
		Backends:         urls,
		VNodes:           *vnodes,
		MaxGridN:         *maxGrid,
		MaxSteps:         *maxSteps,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		EvictAfter:       *evictAfter,
		BackoffMaxProbes: *backoffMax,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,

		BreakerThreshold:  *breakerThreshold,
		BreakerOpenProbes: *breakerOpenProbes,
		RetryBudgetRatio:  *retryBudget,
		RetryBudgetMax:    *retryBudgetMax,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdegw:", err)
		os.Exit(2)
	}

	api := &http.Server{Addr: *addr, Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "pdegw: serving on %s, fronting %d backends\n", *addr, len(urls))
		errc <- api.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "pdegw:", err)
			os.Exit(1)
		}
		return
	}
	stop() // a second signal kills the process immediately

	fmt.Fprintln(os.Stderr, "pdegw: draining")
	g.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := api.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pdegw: shutdown:", err)
	}
	drainErr := g.Drain(shutdownCtx)
	g.Close()
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "pdegw: drain incomplete:", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pdegw: drained cleanly")
}

// parseBackends splits and validates the -backends list: non-empty,
// scheme-prefixed entries with any trailing slash trimmed (the gateway
// appends paths).
func parseBackends(s string) ([]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-backends is required (comma-separated pdeserved base URLs)")
	}
	parts := strings.Split(s, ",")
	urls := make([]string, 0, len(parts))
	for _, p := range parts {
		u := strings.TrimRight(strings.TrimSpace(p), "/")
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("backend %q: need an http:// or https:// base URL", u)
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("-backends is required (comma-separated pdeserved base URLs)")
	}
	return urls, nil
}
