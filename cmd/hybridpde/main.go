// Command hybridpde regenerates the tables and figures of the paper's
// evaluation. One experiment per -exp value; -quick shrinks problem sizes
// and trial counts for a fast smoke run.
//
// Usage:
//
//	hybridpde -exp table1|table2|table3|table4|fig2|fig3|fig6|fig7|fig8|fig9|all
//	          [-quick] [-seed N] [-out DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hybridpde/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all", "experiment to run: table1..table4, fig2, fig3, fig6..fig9, ablate, or all")
		quick = flag.Bool("quick", false, "reduced problem sizes and trial counts")
		seed  = flag.Int64("seed", 1, "random seed for problem generation and chip mismatch")
		out   = flag.String("out", "", "directory for image artifacts (PPM basin plots)")
	)
	flag.Parse()
	// Ctrl-C cancels the context threaded through every solver, so a long
	// sweep aborts mid-solve instead of running a figure to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := exp.Config{Quick: *quick, Seed: *seed, OutDir: *out, Ctx: ctx}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	runners := map[string]func(exp.Config) (fmt.Stringer, error){
		"table1": func(c exp.Config) (fmt.Stringer, error) { return exp.Table1(c), nil },
		"table2": func(c exp.Config) (fmt.Stringer, error) { return exp.Table2(c) },
		"table3": func(c exp.Config) (fmt.Stringer, error) { return exp.Table3(c), nil },
		"table4": func(c exp.Config) (fmt.Stringer, error) { return exp.Table4(c) },
		"fig2":   func(c exp.Config) (fmt.Stringer, error) { return exp.Fig2(c) },
		"fig3":   func(c exp.Config) (fmt.Stringer, error) { return exp.Fig3(c) },
		"fig6":   func(c exp.Config) (fmt.Stringer, error) { return exp.Fig6(c) },
		"fig7":   func(c exp.Config) (fmt.Stringer, error) { return exp.Fig7(c) },
		"fig8":   func(c exp.Config) (fmt.Stringer, error) { return exp.Fig8(c) },
		"fig9":   func(c exp.Config) (fmt.Stringer, error) { return exp.Fig9(c) },
		"ablate": func(c exp.Config) (fmt.Stringer, error) { return exp.Ablations(c) },
	}
	order := []string{"table1", "table2", "table3", "table4", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "ablate"}

	if *which == "all" {
		for _, name := range order {
			run(runners[name], cfg, name)
		}
		return
	}
	r, ok := runners[*which]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want one of %v or all)", *which, order))
	}
	run(r, cfg, *which)
}

func run(r func(exp.Config) (fmt.Stringer, error), cfg exp.Config, name string) {
	res, err := r(cfg)
	// Drivers tolerate per-trial solve failures, so a Ctrl-C mid-sweep can
	// surface as a "successful" run of empty rows; report it as the abort it is.
	if err == nil && cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		err = cfg.Ctx.Err()
	}
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	fmt.Println(res.String())
	if cfg.OutDir != "" {
		if c, ok := res.(exp.CSVExporter); ok {
			path, err := exp.WriteCSV(cfg.OutDir, name, c)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridpde:", err)
	os.Exit(1)
}
