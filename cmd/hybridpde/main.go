// Command hybridpde regenerates the tables and figures of the paper's
// evaluation. One experiment per -exp value; -quick shrinks problem sizes
// and trial counts for a fast smoke run.
//
// Usage:
//
//	hybridpde -exp table1|table2|table3|table4|fig2|fig3|fig6|fig7|fig8|fig9|all
//	          [-quick] [-seed N] [-out DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hybridpde/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all", "experiment to run: table1..table4, fig2, fig3, fig6..fig9, ablate, or all")
		quick = flag.Bool("quick", false, "reduced problem sizes and trial counts")
		seed  = flag.Int64("seed", 1, "random seed for problem generation and chip mismatch")
		out   = flag.String("out", "", "directory for image artifacts (PPM basin plots)")
	)
	flag.Parse()
	// Ctrl-C cancels the context threaded through every solver, so a long
	// sweep aborts mid-solve instead of running a figure to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := exp.Config{Quick: *quick, Seed: *seed, OutDir: *out}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	runners := map[string]func(context.Context, exp.Config) (fmt.Stringer, error){
		"table1": func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Table1(ctx, c) },
		"table2": func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Table2(ctx, c) },
		"table3": func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Table3(ctx, c), nil },
		"table4": func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Table4(ctx, c) },
		"fig2":   func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Fig2(ctx, c) },
		"fig3":   func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Fig3(ctx, c) },
		"fig6":   func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Fig6(ctx, c) },
		"fig7":   func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Fig7(ctx, c) },
		"fig8":   func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Fig8(ctx, c) },
		"fig9":   func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Fig9(ctx, c) },
		"ablate": func(ctx context.Context, c exp.Config) (fmt.Stringer, error) { return exp.Ablations(ctx, c) },
	}
	order := []string{"table1", "table2", "table3", "table4", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "ablate"}

	if *which == "all" {
		for _, name := range order {
			run(ctx, runners[name], cfg, name)
		}
		return
	}
	r, ok := runners[*which]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want one of %v or all)", *which, order))
	}
	run(ctx, r, cfg, *which)
}

func run(ctx context.Context, r func(context.Context, exp.Config) (fmt.Stringer, error), cfg exp.Config, name string) {
	res, err := r(ctx, cfg)
	// Drivers tolerate per-trial solve failures, so a Ctrl-C mid-sweep can
	// surface as a "successful" run of empty rows; report it as the abort it is.
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	fmt.Println(res.String())
	if cfg.OutDir != "" {
		if c, ok := res.(exp.CSVExporter); ok {
			path, err := exp.WriteCSV(cfg.OutDir, name, c)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridpde:", err)
	os.Exit(1)
}
