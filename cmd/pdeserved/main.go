// Command pdeserved runs the hybrid-solve HTTP service (internal/serve).
//
// Usage:
//
//	pdeserved [-addr :8080] [-debug-addr 127.0.0.1:8081] [-workers N]
//	          [-queue N] [-max-grid N] [-timeout D] [-max-timeout D]
//	          [-seed N] [-drain-timeout D]
//
// The API listener serves POST /v1/solve, GET /v1/problems, GET /healthz
// and GET /metrics (Prometheus text exposition). The debug listener, bound
// to loopback by default, adds net/http/pprof. On SIGINT/SIGTERM the
// server stops admitting work (healthz flips to 503 so load balancers
// de-route), finishes every admitted solve, and exits 0; solves still
// running past -drain-timeout are abandoned and the exit code is 1.
//
//pdevet:allow walltime the process entry point owns the shutdown clock; all other wall reads live in internal/serve/clock.go
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridpde/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "API listen address")
		debugAddr    = flag.String("debug-addr", "127.0.0.1:8081", "pprof/debug listen address (empty disables)")
		workers      = flag.Int("workers", 0, "solve workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue depth beyond the worker count")
		maxGrid      = flag.Int("max-grid", 12, "largest 2-D grid size a request may ask for")
		timeout      = flag.Duration("timeout", 5*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "clamp on client-supplied deadlines")
		seed         = flag.Int64("seed", 1, "base seed for worker fabrics and accelerators")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight solves")
	)
	flag.Parse()

	s := serve.NewServer(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxGridN:       *maxGrid,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Seed:           *seed,
	})

	api := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 2)
	go func() {
		fmt.Fprintf(os.Stderr, "pdeserved: serving on %s\n", *addr)
		errc <- api.ListenAndServe()
	}()
	var debug *http.Server
	if *debugAddr != "" {
		debug = &http.Server{Addr: *debugAddr, Handler: s.DebugHandler()}
		go func() {
			fmt.Fprintf(os.Stderr, "pdeserved: debug/pprof on %s\n", *debugAddr)
			errc <- debug.ListenAndServe()
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "pdeserved:", err)
			os.Exit(1)
		}
		return
	}
	stop() // a second signal kills the process immediately

	fmt.Fprintln(os.Stderr, "pdeserved: draining")
	s.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := api.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pdeserved: shutdown:", err)
	}
	if debug != nil {
		debug.Shutdown(shutdownCtx)
	}
	if err := s.Drain(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pdeserved: drain incomplete:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pdeserved: drained cleanly")
}
