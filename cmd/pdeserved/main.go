// Command pdeserved runs the hybrid-solve HTTP service (internal/serve).
//
// Usage:
//
//	pdeserved [-addr :8080] [-debug-addr 127.0.0.1:8081] [-workers N]
//	          [-min-workers N] [-max-workers N] [-scale-interval D]
//	          [-scale-up-queue N] [-scale-idle-ticks N]
//	          [-queue N] [-max-grid N] [-timeout D] [-max-timeout D]
//	          [-seed N] [-drain-timeout D] [-chaos] [-chaos-spec SPEC]
//	          [-retries N] [-seed-gate F] [-cache-size N] [-cache-off]
//	          [-warm-radius F] [-max-steps N] [-stream-buffer N]
//
// The API listener serves POST /v1/solve, POST /v1/stream (NDJSON transient
// trajectories, one frame line per time step), GET /v1/problems,
// GET /healthz and GET /metrics (Prometheus text exposition). The debug listener, bound
// to loopback by default, adds net/http/pprof. On SIGINT/SIGTERM the
// server stops admitting work (healthz flips to 503 so load balancers
// de-route), finishes every admitted solve, and exits 0; solves still
// running past -drain-timeout are abandoned and the exit code is 1.
//
// -chaos injects the built-in fault specification (internal/fault
// DefaultChaosText) into every worker accelerator; -chaos-spec replaces it
// with an inline spec text or, with an @ prefix, a spec file. Faulty seeds
// are caught by the degradation ladder and served from a lower rung with
// the degraded flag set, never a 5xx.
//
// -max-workers above -min-workers arms the autoscaler (internal/adapt): a
// tick-driven controller samples queue depth, shed rate and solve latency
// every -scale-interval and resizes the worker pool inside
// [-min-workers, -max-workers], rebalancing per-solve parallelism so
// Workers×SolveProcs stays within the GOMAXPROCS budget. Responses are
// bit-identical at every pool size.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridpde/internal/adapt"
	"hybridpde/internal/fault"
	"hybridpde/internal/serve"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "API listen address")
		debugAddr      = flag.String("debug-addr", "127.0.0.1:8081", "pprof/debug listen address (empty disables)")
		workers        = flag.Int("workers", 0, "initial solve workers (0 = -min-workers if set, else GOMAXPROCS)")
		minWorkers     = flag.Int("min-workers", 0, "autoscaler floor on the worker pool (0 = pin at -workers)")
		maxWorkers     = flag.Int("max-workers", 0, "autoscaler ceiling on the worker pool (0 = pin at -workers)")
		scaleInterval  = flag.Duration("scale-interval", 250*time.Millisecond, "autoscaler controller tick period (0 disables the autoscaler)")
		scaleUpQueue   = flag.Int("scale-up-queue", 0, "queue depth that triggers a scale-up (0 = default 4)")
		scaleIdleTicks = flag.Int("scale-idle-ticks", 0, "consecutive idle ticks before scaling down one worker (0 = default 20)")
		queue          = flag.Int("queue", 64, "admission queue depth beyond the worker count")
		maxGrid        = flag.Int("max-grid", 12, "largest 2-D grid size a request may ask for")
		timeout        = flag.Duration("timeout", 5*time.Second, "default per-request deadline")
		maxTimeout     = flag.Duration("max-timeout", 30*time.Second, "clamp on client-supplied deadlines")
		seed           = flag.Int64("seed", 1, "base seed for worker fabrics and accelerators")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight solves")
		chaos          = flag.Bool("chaos", false, "inject the built-in fault spec into every worker accelerator")
		chaosSpec      = flag.String("chaos-spec", "", "fault spec text, or @file to load one (implies -chaos)")
		retries        = flag.Int("retries", 0, "per-request retries of transient-fault solves (0 = default 2, negative disables)")
		seedGate       = flag.Float64("seed-gate", 0, "seed-quality gate factor (0 = default 1: reject seeds worse than the start)")
		solveProcs     = flag.Int("solve-procs", 0, "per-solve parallel workers (0 = GOMAXPROCS/workers, negative disables)")
		cacheSize      = flag.Int("cache-size", 0, "solve-cache entry bound (0 = default 4096)")
		cacheOff       = flag.Bool("cache-off", false, "disable the content-addressed solve cache")
		warmRadius     = flag.Float64("warm-radius", 0, "parameter distance within which a cached neighbour warm-starts a solve (0 = default 0.25, negative disables)")
		maxSteps       = flag.Int("max-steps", 0, "cap on a POST /v1/stream trajectory's step count (0 = default 256)")
		streamBuffer   = flag.Int("stream-buffer", 0, "frames buffered between a stream's solver and its network writer (0 = default 8)")
	)
	flag.Parse()

	faults, err := loadFaultSpec(*chaos, *chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdeserved:", err)
		os.Exit(2)
	}
	if faults != nil {
		fmt.Fprintf(os.Stderr, "pdeserved: chaos mode: %d fault classes injected\n", len(faults.Faults))
	}

	cacheEntries := *cacheSize
	if *cacheOff {
		cacheEntries = -1
	}
	initialWorkers := *workers
	if initialWorkers == 0 && *minWorkers > 0 {
		// With an autoscaler range configured, start at the floor and let
		// load earn the extra workers.
		initialWorkers = *minWorkers
	}
	s := serve.NewServer(serve.Config{
		Workers:        initialWorkers,
		MinWorkers:     *minWorkers,
		MaxWorkers:     *maxWorkers,
		QueueDepth:     *queue,
		MaxGridN:       *maxGrid,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Seed:           *seed,
		Faults:         faults,
		SeedGate:       *seedGate,
		MaxRetries:     *retries,
		SolveProcs:     *solveProcs,
		CacheEntries:   cacheEntries,
		WarmRadius:     *warmRadius,
		MaxSteps:       *maxSteps,
		StreamBuffer:   *streamBuffer,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *maxWorkers > *minWorkers && *maxWorkers > 1 && *scaleInterval > 0 {
		ctrl := adapt.New(adapt.Config{
			Min:          *minWorkers,
			Max:          *maxWorkers,
			ScaleUpQueue: *scaleUpQueue,
			IdleTicks:    *scaleIdleTicks,
		})
		ticker := time.NewTicker(*scaleInterval)
		defer ticker.Stop()
		go adapt.Run(ctx, ticker.C, ctrl, s)
		fmt.Fprintf(os.Stderr, "pdeserved: autoscaler armed: %d..%d workers, tick %s\n",
			*minWorkers, *maxWorkers, *scaleInterval)
	}

	api := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 2)
	go func() {
		fmt.Fprintf(os.Stderr, "pdeserved: serving on %s\n", *addr)
		errc <- api.ListenAndServe()
	}()
	var debug *http.Server
	if *debugAddr != "" {
		debug = &http.Server{Addr: *debugAddr, Handler: s.DebugHandler()}
		go func() {
			fmt.Fprintf(os.Stderr, "pdeserved: debug/pprof on %s\n", *debugAddr)
			errc <- debug.ListenAndServe()
		}()
	}

	select {
	case <-ctx.Done():
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "pdeserved:", err)
			os.Exit(1)
		}
		return
	}
	stop() // a second signal kills the process immediately

	fmt.Fprintln(os.Stderr, "pdeserved: draining")
	s.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := api.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pdeserved: shutdown:", err)
	}
	if debug != nil {
		debug.Shutdown(shutdownCtx)
	}
	if err := s.Drain(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pdeserved: drain incomplete:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pdeserved: drained cleanly")
}

// loadFaultSpec resolves the chaos flags into a fault spec: nil when chaos
// is off, the built-in spec for bare -chaos, or a parsed -chaos-spec value
// (inline text, or @file to read one).
func loadFaultSpec(chaos bool, specArg string) (*fault.Spec, error) {
	if specArg == "" {
		if !chaos {
			return nil, nil
		}
		return fault.DefaultChaosSpec(), nil
	}
	text := specArg
	if specArg[0] == '@' {
		b, err := os.ReadFile(specArg[1:])
		if err != nil {
			return nil, fmt.Errorf("chaos spec: %w", err)
		}
		text = string(b)
	}
	spec, err := fault.ParseSpec(text)
	if err != nil {
		return nil, fmt.Errorf("chaos spec: %w", err)
	}
	return spec, nil
}
