// Command pdebench runs the committed core benchmark baseline: the warm
// repeated sparse-Newton solve and the Crank–Nicolson time loop — the
// latter both with classical Newton (time-loop) and with chord-mode
// factorization reuse (time-loop-reuse) — each at a range of grid sizes
// and per-solve worker counts, reporting best/mean wall-clock seconds plus
// an FNV-64 checksum of the solution bits.
//
// Usage:
//
//	pdebench [-sizes 8,16,32,48] [-procs 1,2,4] [-reps 5] [-steps 4]
//	         [-short] [-seed 80] [-out BENCH_core.json]
//	         [-min-speedup F] [-min-reuse-speedup F]
//
// The checksum is the determinism gate: for a given benchmark and grid
// size, every worker count must produce bit-identical solutions and
// iteration counts, and pdebench exits 1 when any differ. Timing fields
// describe whatever machine ran the tool — gomaxprocs and numcpu are
// recorded so a single-core container's numbers are not mistaken for a
// parallel speedup measurement. The report carries no timestamps, so
// regenerating it on identical hardware yields an identical file.
//
// -short (the make bench-core configuration) trims the size list and rep
// count to keep CI smoke runs cheap.
//
//pdevet:allow walltime a benchmark driver's whole job is reading the stopwatch
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hybridpde/internal/core"
	"hybridpde/internal/nonlin"
	"hybridpde/internal/pde"
)

// Case is one (benchmark, grid size, procs) measurement.
type Case struct {
	Bench       string  `json:"bench"`
	N           int     `json:"n"`
	Dim         int     `json:"dim"`
	Procs       int     `json:"procs"`
	Reps        int     `json:"reps"`
	BestSeconds float64 `json:"best_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	Iterations  int     `json:"iterations"`
	// LinearSolves and Refactorizations are reported by the time-loop
	// benches; chord mode (time-loop-reuse) keeps Refactorizations far
	// below LinearSolves, which is where its speedup comes from.
	LinearSolves     int    `json:"linear_solves,omitempty"`
	Refactorizations int    `json:"refactorizations,omitempty"`
	Checksum         string `json:"checksum"`
	// SpeedupVsSerial is best-of-serial / best-of-this-procs for the same
	// bench and size; 0 when no serial case ran.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// ReuseSpeedup is best-of-time-loop / best-of-time-loop-reuse for the
	// same size and procs: the factorization-reuse payoff, an algorithmic
	// win that holds on any machine.
	ReuseSpeedup float64 `json:"reuse_speedup,omitempty"`
}

// Report is the machine-readable result (schema hybridpde-bench-core/v2:
// v1 plus the time-loop-reuse bench and its linear-solve/refactorization
// and reuse-speedup fields).
type Report struct {
	Schema     string `json:"schema"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Short      bool   `json:"short"`
	Seed       int64  `json:"seed"`
	Cases      []Case `json:"cases"`
}

func main() {
	var (
		sizesArg = flag.String("sizes", "8,16,32,48", "comma-separated 2-D grid sizes")
		procsArg = flag.String("procs", "1,2,4", "comma-separated per-solve worker counts")
		reps     = flag.Int("reps", 5, "timed repetitions per case (best and mean are reported)")
		steps    = flag.Int("steps", 4, "time steps per repetition of the time-loop benchmark")
		short    = flag.Bool("short", false, "CI smoke configuration: sizes 8,16 and 3 reps")
		seed     = flag.Int64("seed", 80, "fixture seed (fields, planted roots, starts)")
		out      = flag.String("out", "", "write the JSON report to this file as well as stdout")
		minSpeed = flag.Float64("min-speedup", 0, "fail unless some parallel case beats serial by this factor (0 disables; skipped with a notice on single-CPU machines)")
		minReuse = flag.Float64("min-reuse-speedup", 0, "fail unless some time-loop-reuse case beats plain time-loop by this factor (0 disables; never machine-gated — the win is algorithmic)")
	)
	flag.Parse()

	sizes, err := parseInts(*sizesArg)
	if err != nil {
		fatalf("bad -sizes: %v", err)
	}
	procsList, err := parseInts(*procsArg)
	if err != nil {
		fatalf("bad -procs: %v", err)
	}
	if *short {
		sizes = shortSizes(sizes)
		if *reps > 3 {
			*reps = 3
		}
	}
	if *reps < 1 || *steps < 1 || len(sizes) == 0 || len(procsList) == 0 {
		fatalf("need at least one size, one procs value, one rep and one step")
	}

	rep := Report{
		Schema:     "hybridpde-bench-core/v2",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      *short,
		Seed:       *seed,
	}
	for _, n := range sizes {
		for _, procs := range procsList {
			rep.Cases = append(rep.Cases, runNewtonSteady(n, procs, *reps, *seed))
			rep.Cases = append(rep.Cases, runTimeLoop(n, procs, *reps, *steps, *seed))
			rep.Cases = append(rep.Cases, runTimeLoopReuse(n, procs, *reps, *steps, *seed))
		}
	}
	fillSpeedups(rep.Cases)
	fillReuseSpeedups(rep.Cases)

	ok := checkDeterminism(rep.Cases)
	ok = checkSpeedup(rep.Cases, *minSpeed, rep.NumCPU) && ok
	ok = checkReuseSpeedup(rep.Cases, *minReuse) && ok
	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("encode report: %v", err)
	}
	b = append(b, '\n')
	os.Stdout.Write(b)
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// runNewtonSteady measures the warm repeated sparse-Newton solve: a steady
// 2-D Burgers system with a planted root, start perturbed off it, solved
// once cold to build the workspace and then reps timed warm solves.
func runNewtonSteady(n, procs, reps int, seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	burgers, err := pde.NewBurgers(n, 1.0)
	if err != nil {
		fatalf("newton-steady n=%d: %v", n, err)
	}
	steady := pde.NewBurgersSteady(burgers)
	root := make([]float64, steady.Dim())
	for i := range root {
		root[i] = 2*rng.Float64() - 1
	}
	if err := steady.SetRHSForRoot(root); err != nil {
		fatalf("newton-steady n=%d: %v", n, err)
	}
	u0 := make([]float64, steady.Dim())
	for i := range root {
		u0[i] = root[i] + 0.05*(2*rng.Float64()-1)
	}
	solver := nonlin.NewSparseSolver()
	defer solver.Close()
	opts := nonlin.NewtonOptions{Tol: 1e-12, MaxIter: 60, Procs: procs}
	warm, err := solver.Solve(nil, steady, u0, opts)
	if err != nil {
		fatalf("newton-steady n=%d procs=%d: %v", n, procs, err)
	}
	if !warm.Converged {
		fatalf("newton-steady n=%d procs=%d: warm solve did not converge", n, procs)
	}

	c := Case{Bench: "newton-steady", N: n, Dim: steady.Dim(), Procs: procs, Reps: reps}
	var res nonlin.Result
	c.BestSeconds, c.MeanSeconds = timeReps(reps, func() {
		res, err = solver.Solve(nil, steady, u0, opts)
		if err != nil {
			fatalf("newton-steady n=%d procs=%d: %v", n, procs, err)
		}
	})
	c.Iterations = res.Iterations
	c.Checksum = checksum(res.U)
	return c
}

// runTimeLoop measures the hybrid time loop (pure-digital configuration):
// steps Crank–Nicolson steps per repetition through core.Solve with a
// shared Workspace, fields reset to the same start before every rep.
func runTimeLoop(n, procs, reps, steps int, seed int64) Case {
	rng := rand.New(rand.NewSource(seed + 1))
	burgers, err := pde.NewBurgers(n, 0.8)
	if err != nil {
		fatalf("time-loop n=%d: %v", n, err)
	}
	for i := range burgers.UPrev {
		burgers.UPrev[i] = 0.5 * (2*rng.Float64() - 1)
		burgers.VPrev[i] = 0.5 * (2*rng.Float64() - 1)
	}
	u0 := append([]float64(nil), burgers.UPrev...)
	v0 := append([]float64(nil), burgers.VPrev...)
	opts := core.Options{SkipAnalog: true, Workspace: core.NewWorkspace(), Procs: procs}

	c := Case{Bench: "time-loop", N: n, Dim: burgers.Dim(), Procs: procs, Reps: reps}
	var iters, linSolves, refactors int
	var final []float64
	runOnce := func() {
		copy(burgers.UPrev, u0)
		copy(burgers.VPrev, v0)
		iters, linSolves, refactors = 0, 0, 0
		for s := 0; s < steps; s++ {
			rep, err := core.Solve(nil, burgers, opts)
			if err != nil {
				fatalf("time-loop n=%d procs=%d: %v", n, procs, err)
			}
			iters += rep.Digital.TotalIters
			linSolves += rep.Digital.LinearSolves
			refactors += rep.Digital.Refactorizations
			final = rep.U
			if err := burgers.Advance(rep.U); err != nil {
				fatalf("time-loop n=%d procs=%d: %v", n, procs, err)
			}
		}
	}
	runOnce() // warm the workspace and Jacobian caches
	c.BestSeconds, c.MeanSeconds = timeReps(reps, runOnce)
	c.Iterations = iters
	c.LinearSolves = linSolves
	c.Refactorizations = refactors
	c.Checksum = checksum(final)
	return c
}

// runTimeLoopReuse measures the same trajectory as runTimeLoop through
// core.TimeLoop with chord-mode factorization reuse: the band-LU factors
// persist across Newton iterations and time steps, refreshed only by the
// residual-contraction gate. The fixture (seed, fields, Re, steps) is
// identical to time-loop's, so the per-(n, procs) pairing is a clean A/B.
func runTimeLoopReuse(n, procs, reps, steps int, seed int64) Case {
	rng := rand.New(rand.NewSource(seed + 1))
	burgers, err := pde.NewBurgers(n, 0.8)
	if err != nil {
		fatalf("time-loop-reuse n=%d: %v", n, err)
	}
	for i := range burgers.UPrev {
		burgers.UPrev[i] = 0.5 * (2*rng.Float64() - 1)
		burgers.VPrev[i] = 0.5 * (2*rng.Float64() - 1)
	}
	u0 := append([]float64(nil), burgers.UPrev...)
	v0 := append([]float64(nil), burgers.VPrev...)
	opts := core.Options{SkipAnalog: true, Workspace: core.NewWorkspace(), Procs: procs}
	opts.Newton.Chord = true

	c := Case{Bench: "time-loop-reuse", N: n, Dim: burgers.Dim(), Procs: procs, Reps: reps}
	var tr core.TransientReport
	var sum string
	runOnce := func() {
		copy(burgers.UPrev, u0)
		copy(burgers.VPrev, v0)
		tr, err = core.TimeLoop(nil, burgers, opts, core.TimeLoopOptions{Steps: steps},
			func(f *core.Frame) error {
				sum = checksum(f.U) // the final frame's digest survives the loop
				return nil
			})
		if err != nil {
			fatalf("time-loop-reuse n=%d procs=%d: %v", n, procs, err)
		}
	}
	runOnce() // warm the workspace and Jacobian caches
	c.BestSeconds, c.MeanSeconds = timeReps(reps, runOnce)
	c.Iterations = tr.TotalIterations
	c.LinearSolves = tr.LinearSolves
	c.Refactorizations = tr.Refactorizations
	c.Checksum = sum
	return c
}

// timeReps runs fn reps times and returns the best and mean wall-clock
// seconds.
func timeReps(reps int, fn func()) (best, mean float64) {
	best = math.Inf(1)
	var total float64
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		s := time.Since(start).Seconds()
		total += s
		if s < best {
			best = s
		}
	}
	return best, total / float64(reps)
}

// checksum hashes the exact bit pattern of a solution vector (FNV-64a over
// the little-endian float64 bits), so "bit-identical at every worker
// count" is checkable from the committed report.
func checksum(u []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range u {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// fillSpeedups sets SpeedupVsSerial on every case that has a procs=1
// sibling (same bench and size).
func fillSpeedups(cases []Case) {
	type key struct {
		bench string
		n     int
	}
	serial := map[key]float64{}
	for _, c := range cases {
		if c.Procs == 1 {
			serial[key{c.Bench, c.N}] = c.BestSeconds
		}
	}
	for i := range cases {
		if s, ok := serial[key{cases[i].Bench, cases[i].N}]; ok && cases[i].BestSeconds > 0 {
			cases[i].SpeedupVsSerial = s / cases[i].BestSeconds
		}
	}
}

// fillReuseSpeedups sets ReuseSpeedup on every time-loop-reuse case that
// has a time-loop sibling at the same size and procs.
func fillReuseSpeedups(cases []Case) {
	type key struct {
		n     int
		procs int
	}
	plain := map[key]float64{}
	for _, c := range cases {
		if c.Bench == "time-loop" {
			plain[key{c.N, c.Procs}] = c.BestSeconds
		}
	}
	for i := range cases {
		if cases[i].Bench != "time-loop-reuse" {
			continue
		}
		if p, ok := plain[key{cases[i].N, cases[i].Procs}]; ok && cases[i].BestSeconds > 0 {
			cases[i].ReuseSpeedup = p / cases[i].BestSeconds
		}
	}
}

// checkReuseSpeedup asserts that chord-mode factorization reuse paid off:
// the best time-loop-reuse speedup over its plain time-loop sibling must
// reach minReuse. Unlike the parallel-speedup gate this is never skipped
// by machine shape — skipping factorizations is an algorithmic win that a
// single-CPU container measures just as well.
func checkReuseSpeedup(cases []Case, minReuse float64) bool {
	if minReuse <= 0 {
		return true
	}
	best := 0.0
	bestCase := ""
	for _, c := range cases {
		if c.ReuseSpeedup > best {
			best = c.ReuseSpeedup
			bestCase = fmt.Sprintf("%s n=%d procs=%d", c.Bench, c.N, c.Procs)
		}
	}
	if best < minReuse {
		fmt.Fprintf(os.Stderr,
			"pdebench: REUSE VIOLATION: best factorization-reuse speedup %.3f (%s) below the required %.2f\n",
			best, bestCase, minReuse)
		return false
	}
	fmt.Fprintf(os.Stderr, "pdebench: best factorization-reuse speedup %.3f (%s) >= %.2f\n", best, bestCase, minReuse)
	return true
}

// checkDeterminism verifies the tentpole contract on the measured data:
// within one bench and size, every procs value produced the same checksum
// and iteration count.
func checkDeterminism(cases []Case) bool {
	type key struct {
		bench string
		n     int
	}
	type want struct {
		sum   string
		iters int
		procs int
	}
	ref := map[key]want{}
	ok := true
	for _, c := range cases {
		k := key{c.Bench, c.N}
		w, seen := ref[k]
		if !seen {
			ref[k] = want{c.Checksum, c.Iterations, c.Procs}
			continue
		}
		if c.Checksum != w.sum || c.Iterations != w.iters {
			fmt.Fprintf(os.Stderr,
				"pdebench: DETERMINISM VIOLATION: %s n=%d procs=%d (checksum %s, %d iters) != procs=%d (checksum %s, %d iters)\n",
				c.Bench, c.N, c.Procs, c.Checksum, c.Iterations, w.procs, w.sum, w.iters)
			ok = false
		}
	}
	return ok
}

// checkSpeedup asserts that parallelism paid off: the best speedup over
// serial across all multi-procs cases must reach minSpeed. A machine with
// one CPU cannot speed anything up, so the assertion is skipped there with
// a visible notice rather than failing a single-core CI runner.
func checkSpeedup(cases []Case, minSpeed float64, numCPU int) bool {
	if minSpeed <= 0 {
		return true
	}
	if numCPU == 1 {
		fmt.Fprintf(os.Stderr,
			"pdebench: NOTICE: numcpu=1, skipping the -min-speedup %.2f assertion (parallel speedup is unmeasurable on a single-CPU machine)\n",
			minSpeed)
		return true
	}
	best := 0.0
	bestCase := ""
	for _, c := range cases {
		if c.Procs > 1 && c.SpeedupVsSerial > best {
			best = c.SpeedupVsSerial
			bestCase = fmt.Sprintf("%s n=%d procs=%d", c.Bench, c.N, c.Procs)
		}
	}
	if best < minSpeed {
		fmt.Fprintf(os.Stderr,
			"pdebench: SPEEDUP VIOLATION: best parallel speedup %.3f (%s) below the required %.2f on a %d-CPU machine\n",
			best, bestCase, minSpeed, numCPU)
		return false
	}
	fmt.Fprintf(os.Stderr, "pdebench: best parallel speedup %.3f (%s) >= %.2f\n", best, bestCase, minSpeed)
	return true
}

// shortSizes trims the size list to its two smallest entries.
func shortSizes(sizes []int) []int {
	out := append([]int(nil), sizes...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > 2 {
		out = out[:2]
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pdebench: "+format+"\n", args...)
	os.Exit(2)
}
