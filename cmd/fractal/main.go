// Command fractal renders the basin-of-attraction figures: Figure 2 (the
// cubic z³ = 1 solved by continuous Newton on the chip model, versus the
// fractal basins of classical digital Newton) and, with -homotopy, Figure 3
// (the coupled quadratic system with and without homotopy continuation).
//
// Images are written as binary PPM files.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hybridpde/internal/exp"
)

func main() {
	var (
		homotopy = flag.Bool("homotopy", false, "render Figure 3 (homotopy basins) instead of Figure 2")
		quick    = flag.Bool("quick", false, "small image for a fast run")
		seed     = flag.Int64("seed", 1, "chip mismatch seed")
		out      = flag.String("out", ".", "output directory for PPM images")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	cfg := exp.Config{Quick: *quick, Seed: *seed, OutDir: *out}
	ctx := context.Background()
	if *homotopy {
		res, err := exp.Fig3(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.String())
		return
	}
	res, err := exp.Fig2(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fractal:", err)
	os.Exit(1)
}
