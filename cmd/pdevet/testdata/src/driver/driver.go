// Package driver is the pdevet driver's own fixture. It carries exactly two
// stable findings — one walltime violation and one stale allow — so the
// driver tests can pin the full pipeline: text output, -json shape,
// baseline add/suppress/expire, and unusedallow reporting.
package driver

import "time"

// now violates walltime deliberately.
func now() time.Time {
	return time.Now()
}

//pdevet:allow floateq nothing here compares floats; kept to exercise unusedallow
func idle() {}
