// Package clean has no findings and no annotations: the driver tests use
// it to pin zero-exit behavior and the empty JSON array.
package clean

func ok() int { return 1 }
