// Command pdevet runs the repository's custom static-analysis pass: six
// project-specific rules (internal/lint) that turn the numerical and
// hot-path conventions of the hybrid solver — reproducible randomness,
// simulated-time-only accounting, allocation-free stepping, tolerance-based
// float comparison, context discipline, no swallowed errors — into
// machine-checked invariants. Pure standard library: go/ast + go/types with
// a source importer, no golang.org/x/tools.
//
// Usage:
//
//	pdevet [-rule name] [-list] [packages]
//
// Package patterns are directories relative to the current module; `...`
// walks subtrees (default `./...`). Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
//
// Findings are suppressed in source with `//pdevet:allow <rule> [reason]`
// annotations; hot-path functions opt into the allocation rule with
// `//pdevet:noalloc`. See DESIGN.md "Static analysis".
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridpde/internal/lint"
)

func main() {
	var (
		rule = flag.String("rule", "", "run a single analyzer by name")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rule != "" {
		a, ok := lint.AnalyzerByName(*rule)
		if !ok {
			fmt.Fprintf(os.Stderr, "pdevet: unknown rule %q (try -list)\n", *rule)
			os.Exit(2)
		}
		analyzers = []*lint.Analyzer{a}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	if len(dirs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fatal(err)
		}
		for _, d := range lint.RunPackage(pkg, analyzers) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "pdevet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdevet:", err)
	os.Exit(2)
}
