// Command pdevet runs the repository's custom static-analysis pass: eleven
// project-specific rules (internal/lint) that turn the numerical, hot-path
// and concurrency conventions of the hybrid solver — reproducible
// randomness, simulated-time-only accounting, allocation-free stepping,
// tolerance-based float comparison, context discipline, no swallowed
// errors, consistent lock order, lifecycle-tied goroutines, unmixed atomic
// access, sorted map iteration at deterministic outputs, fixed-block float
// reductions — into machine-checked invariants. Pure standard library:
// go/ast + go/types with a source importer, no golang.org/x/tools.
//
// Usage:
//
//	pdevet [-rule name] [-list] [-json] [-baseline file] [-write-baseline file] [packages]
//
// Package patterns are directories relative to the current module; `...`
// walks subtrees (default `./...`). Exit status: 0 clean, 1 findings (or a
// stale baseline), 2 usage or load failure.
//
// -json emits findings as a JSON array instead of text. -baseline reads a
// committed ledger of known findings (rule<TAB>path<TAB>message, no line
// numbers): listed findings are suppressed, but entries matching no current
// finding are stale and fail the run — the ledger can only shrink together
// with the code it excuses. -write-baseline regenerates the ledger from the
// current tree.
//
// Findings are suppressed in source with `//pdevet:allow <rule> [reason]`
// annotations; hot-path functions opt into the allocation rule with
// `//pdevet:noalloc`. When the full rule set runs, allow annotations that
// suppress nothing are themselves reported (rule `unusedallow`), so
// suppressions cannot outlive the code they excused. See DESIGN.md "Static
// analysis".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybridpde/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rule          = fs.String("rule", "", "run a single analyzer by name (disables unusedallow reporting)")
		list          = fs.Bool("list", false, "list analyzers and exit")
		jsonOut       = fs.Bool("json", false, "emit findings as a JSON array")
		baselinePath  = fs.String("baseline", "", "suppress findings listed in this baseline file; stale entries fail the run")
		writeBaseline = fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rule != "" {
		a, ok := lint.AnalyzerByName(*rule)
		if !ok {
			fmt.Fprintf(stderr, "pdevet: unknown rule %q (try -list)\n", *rule)
			return 2
		}
		analyzers = []*lint.Analyzer{a}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return fatal(stderr, err)
	}
	dirs, err := loader.Expand(cwd, patterns)
	if err != nil {
		return fatal(stderr, err)
	}
	if len(dirs) == 0 {
		return fatal(stderr, fmt.Errorf("no packages match %v", patterns))
	}

	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return fatal(stderr, err)
		}
		res := lint.AnalyzePackage(pkg, analyzers)
		diags = append(diags, res.Diags...)
		diags = append(diags, res.Unused...)
	}
	root := loader.ModuleRoot()

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, []byte(lint.FormatBaseline(diags, root)), 0o644); err != nil {
			return fatal(stderr, err)
		}
		fmt.Fprintf(stderr, "pdevet: wrote %d baseline entr%s to %s\n", len(diags), plural(len(diags), "y", "ies"), *writeBaseline)
		return 0
	}

	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			return fatal(stderr, err)
		}
		b, err := lint.ParseBaseline(f)
		f.Close()
		if err != nil {
			return fatal(stderr, err)
		}
		diags, stale = b.Filter(diags, root)
	}

	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags, root); err != nil {
			return fatal(stderr, err)
		}
	} else {
		for _, d := range diags {
			// Module-relative paths keep text output stable across
			// checkouts and let CI problem matchers anchor annotations.
			d.Pos.Filename = lint.RelPath(root, d.Pos.Filename)
			fmt.Fprintln(stdout, d)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "pdevet: stale baseline entry (finding fixed or moved — delete it): %s\n", e)
	}
	if len(diags) > 0 || len(stale) > 0 {
		fmt.Fprintf(stderr, "pdevet: %d finding(s), %d stale baseline entr%s\n", len(diags), len(stale), plural(len(stale), "y", "ies"))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "pdevet:", err)
	return 2
}
