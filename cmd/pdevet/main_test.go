package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver fixture (testdata/src/driver) carries exactly two stable
// findings: a walltime violation and an unused //pdevet:allow. Driver tests
// pin the pipeline around them: text and -json output, the -rule filter's
// effect on unusedallow, and baseline add/suppress/expire semantics.

const driverPkg = "testdata/src/driver"

func runDriver(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestTextOutput(t *testing.T) {
	code, out, _ := runDriver(t, driverPkg)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[walltime]") {
		t.Errorf("missing walltime finding:\n%s", out)
	}
	if !strings.Contains(out, "[unusedallow]") {
		t.Errorf("missing unusedallow finding:\n%s", out)
	}
}

func TestRuleFilterDisablesUnusedAllow(t *testing.T) {
	// Under -rule, other rules' allows are trivially unused and must not be
	// reported: the floateq allow in the fixture stays silent.
	code, out, _ := runDriver(t, "-rule", "walltime", driverPkg)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[walltime]") {
		t.Errorf("missing walltime finding:\n%s", out)
	}
	if strings.Contains(out, "unusedallow") {
		t.Errorf("-rule run must not report unusedallow:\n%s", out)
	}
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runDriver(t, "-json", driverPkg)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), out)
	}
	rules := map[string]bool{}
	for _, f := range findings {
		rules[f.Rule] = true
		if f.File != "cmd/pdevet/testdata/src/driver/driver.go" {
			t.Errorf("file = %q, want module-relative forward-slash path", f.File)
		}
		if f.Line <= 0 || f.Col <= 0 {
			t.Errorf("finding %+v has no position", f)
		}
		if f.Message == "" {
			t.Errorf("finding %+v has no message", f)
		}
	}
	if !rules["walltime"] || !rules["unusedallow"] {
		t.Errorf("rules = %v, want walltime and unusedallow", rules)
	}
}

func TestJSONCleanTree(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "testdata/src/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", out)
	}
}

func TestBaselineLifecycle(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline")

	// Add: -write-baseline captures the current findings.
	code, _, errb := runDriver(t, "-write-baseline", base, driverPkg)
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0\n%s", code, errb)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			entries = append(entries, line)
		}
	}
	if len(entries) != 2 {
		t.Fatalf("baseline has %d entries, want 2:\n%s", len(entries), data)
	}
	for _, e := range entries {
		if len(strings.SplitN(e, "\t", 3)) != 3 {
			t.Errorf("entry %q is not rule<TAB>path<TAB>message", e)
		}
		if strings.Contains(e, ":") && strings.Contains(strings.SplitN(e, "\t", 3)[1], ":") {
			t.Errorf("entry %q carries a line number; baseline identity must be line-free", e)
		}
	}

	// Suppress: the same tree against its own baseline is clean.
	code, out, errb := runDriver(t, "-baseline", base, driverPkg)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("baselined run reported findings:\n%s", out)
	}

	// Expire: an entry matching no finding is stale and fails the run —
	// the ledger cannot shrink except together with the code it excuses.
	staleEntry := "floateq\tcmd/pdevet/testdata/src/driver/driver.go\tno such finding anymore"
	if err := os.WriteFile(base, []byte(string(data)+staleEntry+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb = runDriver(t, "-baseline", base, driverPkg)
	if code != 1 {
		t.Fatalf("stale-baseline run exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(errb, "stale baseline entry") {
		t.Errorf("stderr does not name the stale entry:\n%s", errb)
	}

	// New finding: removing a real entry re-surfaces that finding.
	short := strings.Join(entries[:1], "\n") + "\n"
	if err := os.WriteFile(base, []byte(short), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runDriver(t, "-baseline", base, driverPkg)
	if code != 1 {
		t.Fatalf("shrunk-baseline run exit = %d, want 1\n%s", code, out)
	}
	if strings.Count(strings.TrimSpace(out), "\n")+1 != 1 {
		t.Errorf("want exactly one resurfaced finding:\n%s", out)
	}
}
