// Command pdeload drives open-loop load against a pdeserved instance and
// reports throughput and latency percentiles.
//
// Usage:
//
//	pdeload [-url http://127.0.0.1:8080] [-rate 200] [-duration 10s]
//	        [-concurrency 64] [-problem burgers-steady] [-n 5] [-analog]
//	        [-seed-spread 16] [-out BENCH_serve.json]
//
// Open-loop means request launch times come from a fixed-rate ticker, not
// from completions: when the service is saturated the client keeps firing,
// which is what exposes the 429 load-shedding path instead of politely
// adapting to it. Launches beyond -concurrency outstanding requests are
// counted as local drops (the client's own backpressure) rather than
// blocking the schedule.
//
// The exit code is 1 when the run saw zero successful (2xx) responses, so
// smoke scripts can assert liveness with the shell alone.
//
//pdevet:allow walltime a load generator's whole job is measuring real wall-clock latency
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"hybridpde/internal/serve"
	"hybridpde/internal/stats"
)

// Report is the machine-readable result, written as JSON to -out.
type Report struct {
	URL         string  `json:"url"`
	Problem     string  `json:"problem"`
	N           int     `json:"n"`
	Analog      bool    `json:"analog,omitempty"`
	RateRPS     float64 `json:"offered_rate_rps"`
	Duration    float64 `json:"duration_seconds"`
	Concurrency int     `json:"concurrency"`

	Sent        int `json:"sent"`
	LocalDrops  int `json:"local_drops"`
	OK          int `json:"ok_2xx"`
	Degraded    int `json:"degraded"`
	Shed        int `json:"shed_429"`
	ClientErr   int `json:"client_4xx"`
	ServerErr   int `json:"server_5xx"`
	TransportEr int `json:"transport_errors"`

	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	Codes map[string]int `json:"codes"`
}

func main() {
	var (
		url        = flag.String("url", "http://127.0.0.1:8080", "pdeserved base URL")
		rate       = flag.Float64("rate", 200, "offered load in requests per second")
		duration   = flag.Duration("duration", 10*time.Second, "how long to offer load")
		conc       = flag.Int("concurrency", 64, "max outstanding requests before the client drops locally")
		problem    = flag.String("problem", serve.KindBurgersSteady, "problem kind to request")
		n          = flag.Int("n", 5, "grid size of the requested problem")
		analog     = flag.Bool("analog", false, "request analog seeding")
		seedSpread = flag.Int64("seed-spread", 16, "cycle request seeds through [1, spread]")
		out        = flag.String("out", "", "write the JSON report to this file as well as stdout")
	)
	flag.Parse()
	if *rate <= 0 || *duration <= 0 || *conc <= 0 {
		fmt.Fprintln(os.Stderr, "pdeload: -rate, -duration and -concurrency must be positive")
		os.Exit(2)
	}

	body := func(seed int64) []byte {
		b, err := json.Marshal(serve.Request{Problem: *problem, N: *n, Seed: seed, Analog: *analog})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdeload:", err)
			os.Exit(2)
		}
		return b
	}
	client := &http.Client{Timeout: 60 * time.Second}

	type result struct {
		code     int
		seconds  float64
		degraded bool
		err      error
	}
	results := make(chan result, 4096)
	slots := make(chan struct{}, *conc)

	rep := Report{
		URL: *url, Problem: *problem, N: *n, Analog: *analog,
		RateRPS: *rate, Duration: duration.Seconds(), Concurrency: *conc,
		Codes: map[string]int{},
	}

	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	stop := time.After(*duration)
	begin := time.Now()

launch:
	for seed := int64(1); ; seed++ {
		select {
		case <-stop:
			break launch
		case <-ticker.C:
		}
		select {
		case slots <- struct{}{}:
		default:
			rep.LocalDrops++ // open loop: never block the schedule
			continue
		}
		rep.Sent++
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-slots }()
			start := time.Now()
			hr, err := client.Post(*url+"/v1/solve", "application/json",
				bytes.NewReader(body(1+seed%*seedSpread)))
			if err != nil {
				results <- result{err: err}
				return
			}
			degraded := false
			if hr.StatusCode >= 200 && hr.StatusCode < 300 {
				var sr struct {
					Degraded bool `json:"degraded"`
				}
				json.NewDecoder(hr.Body).Decode(&sr)
				degraded = sr.Degraded
			}
			io.Copy(io.Discard, hr.Body)
			hr.Body.Close()
			results <- result{code: hr.StatusCode, seconds: time.Since(start).Seconds(), degraded: degraded}
		}(seed)
	}
	ticker.Stop()
	go func() { wg.Wait(); close(results) }()

	var latencies []float64
	for r := range results {
		if r.err != nil {
			rep.TransportEr++
			continue
		}
		rep.Codes[fmt.Sprintf("%d", r.code)]++
		switch {
		case r.code >= 200 && r.code < 300:
			rep.OK++
			if r.degraded {
				rep.Degraded++
			}
			latencies = append(latencies, r.seconds)
		case r.code == http.StatusTooManyRequests:
			rep.Shed++
		case r.code >= 400 && r.code < 500:
			rep.ClientErr++
		default:
			rep.ServerErr++
		}
	}
	elapsed := time.Since(begin).Seconds()

	if rep.OK > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed
		rep.LatencyP50Ms = 1000 * stats.Percentile(latencies, 50)
		rep.LatencyP90Ms = 1000 * stats.Percentile(latencies, 90)
		rep.LatencyP99Ms = 1000 * stats.Percentile(latencies, 99)
		sort.Float64s(latencies)
		rep.LatencyMaxMs = 1000 * latencies[len(latencies)-1]
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "pdeload:", err)
		os.Exit(2)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdeload:", err)
			os.Exit(2)
		}
		fenc := json.NewEncoder(f)
		fenc.SetIndent("", "  ")
		if err := fenc.Encode(rep); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "pdeload:", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pdeload:", err)
			os.Exit(2)
		}
	}
	fmt.Fprintf(os.Stderr, "pdeload: status breakdown: 2xx=%d (degraded=%d) 429=%d other-4xx=%d 5xx=%d transport=%d local-drops=%d\n",
		rep.OK, rep.Degraded, rep.Shed, rep.ClientErr, rep.ServerErr, rep.TransportEr, rep.LocalDrops)
	if rep.OK == 0 {
		fmt.Fprintln(os.Stderr, "pdeload: no successful responses")
		os.Exit(1)
	}
}
