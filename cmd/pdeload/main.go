// Command pdeload drives open-loop load against a pdeserved instance (or
// a pdegw gateway, or a whole fleet) and reports throughput and latency
// percentiles.
//
// Usage:
//
//	pdeload [-url http://127.0.0.1:8080] [-rate 200] [-duration 10s]
//	        [-ramp START:END:STEPS] [-concurrency 64]
//	        [-problem burgers-steady] [-n 5] [-analog]
//	        [-seed-spread 16] [-re 1] [-re-step 0] [-re-count 1]
//	        [-targets URL1,URL2,...] [-out BENCH_serve.json]
//	        [-stream -steps K]
//
// -stream switches to the NDJSON streaming scenario: POST /v1/stream
// trajectories of -steps Crank–Nicolson steps against a transient
// -problem (burgers2d or burgers1d), read frame by frame as the server
// flushes them. The report adds time-to-first-frame percentiles,
// frames/sec and the TTFF/total-latency share — the streaming claim is
// that the first frame lands long before the trajectory completes.
//
// -ramp replaces the flat -rate with an open-loop ramp profile: -duration
// is split evenly into STEPS stages whose offered rates interpolate
// linearly from START to END requests per second. The report gains a
// ramp_steps array (per-step sent/2xx/429/5xx and p50) and a per-step
// summary line on stderr — the shape an autoscaler smoke test reads its
// evidence from.
//
// -targets replaces -url with a comma-separated list of base URLs:
// launches round-robin across them and the report adds a per-target
// request breakdown (sent/2xx/429/4xx/5xx/transport and per-target p50).
// Point it at several pdeserved backends to compare them side by side, or
// at a single pdegw to exercise the fleet path — when the first target's
// /metrics page exposes the pdegw_* plane the report also records the
// failover/batching counter deltas the run produced.
//
// Open-loop means request launch times come from a fixed-rate ticker, not
// from completions: when the service is saturated the client keeps firing,
// which is what exposes the 429 load-shedding path instead of politely
// adapting to it. Launches beyond -concurrency outstanding requests are
// counted as local drops (the client's own backpressure) rather than
// blocking the schedule.
//
// -re-step/-re-count turn the run into a repeated parameter sweep: request
// i asks for re = -re + (i mod -re-count)·-re-step, so the same sweep
// points recur and a cache-enabled server can serve repeats by replay and
// near-neighbours by warm-started continuation. The report splits latency
// between first-occurrence (cold) and repeated request identities, and —
// when the server exposes /metrics — records the cache hit/warm-hit/miss
// deltas the run produced. Pair sweeps with -seed-spread 1: warm starts
// only continue solutions of the same random-field realisation.
//
// The exit code is 1 when the run saw zero successful (2xx) responses, so
// smoke scripts can assert liveness with the shell alone.
//
//pdevet:allow walltime a load generator's whole job is measuring real wall-clock latency
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hybridpde/internal/serve"
	"hybridpde/internal/stats"
)

// RampStepReport is one stage of a -ramp run.
type RampStepReport struct {
	Step         int     `json:"step"`
	RateRPS      float64 `json:"offered_rate_rps"`
	Sent         int     `json:"sent"`
	LocalDrops   int     `json:"local_drops"`
	OK           int     `json:"ok_2xx"`
	Shed         int     `json:"shed_429"`
	ServerErr    int     `json:"server_5xx"`
	TransportEr  int     `json:"transport_errors"`
	LatencyP50Ms float64 `json:"latency_p50_ms,omitempty"`
}

// TargetReport is one target's share of a multi-target run.
type TargetReport struct {
	URL          string  `json:"url"`
	Sent         int     `json:"sent"`
	OK           int     `json:"ok_2xx"`
	Shed         int     `json:"shed_429"`
	ClientErr    int     `json:"client_4xx"`
	ServerErr    int     `json:"server_5xx"`
	TransportEr  int     `json:"transport_errors"`
	LatencyP50Ms float64 `json:"latency_p50_ms,omitempty"`
}

// Report is the machine-readable result, written as JSON to -out.
type Report struct {
	URL         string  `json:"url"`
	Problem     string  `json:"problem"`
	N           int     `json:"n"`
	Analog      bool    `json:"analog,omitempty"`
	RateRPS     float64 `json:"offered_rate_rps"`
	Duration    float64 `json:"duration_seconds"`
	Concurrency int     `json:"concurrency"`

	ReBase  float64 `json:"re_base,omitempty"`
	ReStep  float64 `json:"re_step,omitempty"`
	ReCount int     `json:"re_count,omitempty"`

	Sent        int `json:"sent"`
	LocalDrops  int `json:"local_drops"`
	OK          int `json:"ok_2xx"`
	Degraded    int `json:"degraded"`
	Shed        int `json:"shed_429"`
	ClientErr   int `json:"client_4xx"`
	ServerErr   int `json:"server_5xx"`
	TransportEr int `json:"transport_errors"`

	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	// Cold/repeat split: a request identity (problem, n, seed, re) is cold
	// the first time this run sends it and a repeat afterwards. On a
	// cache-enabled server repeats are replays, so the gap between the two
	// p50s is the cache's measured latency win.
	ColdCount    int     `json:"cold_count,omitempty"`
	RepeatCount  int     `json:"repeat_count,omitempty"`
	ColdP50Ms    float64 `json:"cold_p50_ms,omitempty"`
	RepeatP50Ms  float64 `json:"repeat_p50_ms,omitempty"`
	ColdMeanMs   float64 `json:"cold_mean_ms,omitempty"`
	RepeatMeanMs float64 `json:"repeat_mean_ms,omitempty"`
	// Iteration means stay explicit even at zero: a warm-start mean of 0
	// ("the continuation start was already converged") is the headline
	// number of a repeated-sweep run, not an absent one.
	ColdMeanIters  float64 `json:"cold_mean_newton_iters"`
	WarmMeanIters  float64 `json:"warm_mean_newton_iters"`
	CacheHits      uint64  `json:"cache_hits,omitempty"`
	CacheWarmHits  uint64  `json:"cache_warm_hits,omitempty"`
	CacheMisses    uint64  `json:"cache_misses,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
	MetricsScraped bool    `json:"metrics_scraped,omitempty"`

	// Per-step breakdown of a -ramp run.
	RampSteps []RampStepReport `json:"ramp_steps,omitempty"`

	// Per-target breakdown of a -targets run.
	Targets []TargetReport `json:"targets,omitempty"`

	// Gateway counter deltas, recorded when the first target's /metrics
	// page exposes the pdegw_* plane.
	GatewayScraped   bool   `json:"gateway_scraped,omitempty"`
	GatewayFailovers uint64 `json:"gateway_failovers,omitempty"`
	GatewayBatches   uint64 `json:"gateway_batches,omitempty"`
	GatewayCoalesced uint64 `json:"gateway_coalesced,omitempty"`
	GatewayDeduped   uint64 `json:"gateway_deduped,omitempty"`

	// Streaming scenario (-stream): NDJSON trajectories via POST
	// /v1/stream. TTFF is time-to-first-frame — the latency a streaming
	// client actually waits before results start arriving; the headline
	// claim is TTFFShareP50 ≪ 1 (the first frame lands long before the
	// trajectory completes). Total-latency percentiles reuse the latency_*
	// fields above.
	Stream       bool    `json:"stream,omitempty"`
	Steps        int     `json:"steps,omitempty"`
	StreamsDone  int     `json:"streams_done,omitempty"`
	FramesTotal  int     `json:"frames_total,omitempty"`
	FramesPerSec float64 `json:"frames_per_sec,omitempty"`
	TTFFP50Ms    float64 `json:"ttff_p50_ms,omitempty"`
	TTFFP90Ms    float64 `json:"ttff_p90_ms,omitempty"`
	TTFFP99Ms    float64 `json:"ttff_p99_ms,omitempty"`
	TTFFShareP50 float64 `json:"ttff_share_p50,omitempty"`

	Codes map[string]int `json:"codes"`
}

func main() {
	var (
		url        = flag.String("url", "http://127.0.0.1:8080", "pdeserved base URL")
		rate       = flag.Float64("rate", 200, "offered load in requests per second")
		duration   = flag.Duration("duration", 10*time.Second, "how long to offer load")
		ramp       = flag.String("ramp", "", "open-loop ramp profile START:END:STEPS — split -duration into STEPS stages interpolating the rate from START to END rps (overrides -rate)")
		conc       = flag.Int("concurrency", 64, "max outstanding requests before the client drops locally")
		problem    = flag.String("problem", serve.KindBurgersSteady, "problem kind to request")
		n          = flag.Int("n", 5, "grid size of the requested problem")
		analog     = flag.Bool("analog", false, "request analog seeding")
		seedSpread = flag.Int64("seed-spread", 16, "cycle request seeds through [1, spread]")
		reBase     = flag.Float64("re", 1, "base Reynolds number of grid requests")
		reStep     = flag.Float64("re-step", 0, "Reynolds increment between sweep points (0 = no sweep)")
		reCount    = flag.Int("re-count", 1, "number of sweep points to cycle through")
		targetList = flag.String("targets", "", "comma-separated base URLs to round-robin across (overrides -url)")
		out        = flag.String("out", "", "write the JSON report to this file as well as stdout")
		stream     = flag.Bool("stream", false, "drive POST /v1/stream NDJSON trajectories instead of buffered solves (use a transient -problem: burgers2d or burgers1d)")
		steps      = flag.Int("steps", 64, "time steps per streamed trajectory (-stream only)")
	)
	flag.Parse()
	if *rate <= 0 || *duration <= 0 || *conc <= 0 {
		fmt.Fprintln(os.Stderr, "pdeload: -rate, -duration and -concurrency must be positive")
		os.Exit(2)
	}
	targets := []string{*url}
	if *targetList != "" {
		targets = targets[:0]
		for _, t := range strings.Split(*targetList, ",") {
			if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "pdeload: -targets has no usable URLs")
			os.Exit(2)
		}
		*url = targets[0]
	}
	if *reCount < 1 || *reBase <= 0 {
		fmt.Fprintln(os.Stderr, "pdeload: -re must be positive and -re-count at least 1")
		os.Exit(2)
	}
	if *stream {
		runStream(streamConfig{
			url: *url, rate: *rate, duration: *duration, conc: *conc,
			problem: *problem, n: *n, steps: *steps, seedSpread: *seedSpread,
			re: *reBase, out: *out,
		})
		return
	}

	body := func(seed int64, re float64) []byte {
		b, err := json.Marshal(serve.Request{Problem: *problem, N: *n, Seed: seed, Re: re, Analog: *analog})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdeload:", err)
			os.Exit(2)
		}
		return b
	}
	client := &http.Client{Timeout: 60 * time.Second}

	profile, err := rampProfile(*ramp, *rate, *duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdeload:", err)
		os.Exit(2)
	}

	type result struct {
		code     int
		seconds  float64
		degraded bool
		first    bool
		warm     bool
		iters    int
		target   int
		step     int
		err      error
	}
	results := make(chan result, 4096)
	slots := make(chan struct{}, *conc)

	rep := Report{
		URL: *url, Problem: *problem, N: *n, Analog: *analog,
		RateRPS: *rate, Duration: duration.Seconds(), Concurrency: *conc,
		ReBase: *reBase, ReStep: *reStep, ReCount: *reCount,
		Codes: map[string]int{},
	}
	before, scraped := scrapeCacheCounters(client, *url)
	gwBefore, gwScraped := scrapeGatewayCounters(client, targets[0])

	var wg sync.WaitGroup
	begin := time.Now()

	type identity struct {
		seed int64
		re   float64
	}
	seen := map[identity]bool{}                       // touched only by the launch loop
	stepStats := make([]RampStepReport, len(profile)) // LocalDrops/Sent from the launch loop, the rest from the drain

	i := int64(0)
	for stepIdx, st := range profile {
		stepStats[stepIdx] = RampStepReport{Step: stepIdx + 1, RateRPS: st.rate}
		interval := time.Duration(float64(time.Second) / st.rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		stop := time.After(st.dur)
	launch:
		for ; ; i++ {
			select {
			case <-stop:
				break launch
			case <-ticker.C:
			}
			select {
			case slots <- struct{}{}:
			default:
				rep.LocalDrops++ // open loop: never block the schedule
				stepStats[stepIdx].LocalDrops++
				continue
			}
			rep.Sent++
			stepStats[stepIdx].Sent++
			seed := 1 + i%*seedSpread
			re := *reBase + float64(i%int64(*reCount))**reStep
			id := identity{seed, re}
			first := !seen[id]
			seen[id] = true
			target := int(i % int64(len(targets)))
			wg.Add(1)
			go func(seed int64, re float64, first bool, target, step int) {
				defer wg.Done()
				defer func() { <-slots }()
				start := time.Now()
				hr, err := client.Post(targets[target]+"/v1/solve", "application/json",
					bytes.NewReader(body(seed, re)))
				if err != nil {
					results <- result{err: err, target: target, step: step}
					return
				}
				degraded, warm, iters := false, false, 0
				if hr.StatusCode >= 200 && hr.StatusCode < 300 {
					var sr struct {
						Degraded bool   `json:"degraded"`
						Rung     string `json:"rung"`
						Iters    int    `json:"newton_iterations"`
					}
					json.NewDecoder(hr.Body).Decode(&sr)
					degraded = sr.Degraded
					warm = sr.Rung == "warm-start"
					iters = sr.Iters
				}
				io.Copy(io.Discard, hr.Body)
				hr.Body.Close()
				results <- result{code: hr.StatusCode, seconds: time.Since(start).Seconds(),
					degraded: degraded, first: first, warm: warm, iters: iters, target: target, step: step}
			}(seed, re, first, target, stepIdx)
		}
		ticker.Stop()
	}
	go func() { wg.Wait(); close(results) }()

	var latencies, cold, repeat []float64
	var coldIters, warmIters, coldN, warmN int
	perTarget := make([]TargetReport, len(targets))
	perTargetLat := make([][]float64, len(targets))
	perStepLat := make([][]float64, len(profile))
	for i, u := range targets {
		perTarget[i].URL = u
	}
	for r := range results {
		tr := &perTarget[r.target]
		tr.Sent++
		ss := &stepStats[r.step]
		if r.err != nil {
			rep.TransportEr++
			tr.TransportEr++
			ss.TransportEr++
			continue
		}
		rep.Codes[fmt.Sprintf("%d", r.code)]++
		switch {
		case r.code >= 200 && r.code < 300:
			rep.OK++
			tr.OK++
			ss.OK++
			if r.degraded {
				rep.Degraded++
			}
			latencies = append(latencies, r.seconds)
			perTargetLat[r.target] = append(perTargetLat[r.target], r.seconds)
			perStepLat[r.step] = append(perStepLat[r.step], r.seconds)
			if r.first {
				cold = append(cold, r.seconds)
			} else {
				repeat = append(repeat, r.seconds)
			}
			switch {
			case r.warm:
				warmIters += r.iters
				warmN++
			case r.first:
				// First occurrences that were not warm-started are true cold
				// solves; repeats are replays and ran no Newton of their own.
				coldIters += r.iters
				coldN++
			}
		case r.code == http.StatusTooManyRequests:
			rep.Shed++
			tr.Shed++
			ss.Shed++
		case r.code >= 400 && r.code < 500:
			rep.ClientErr++
			tr.ClientErr++
		default:
			rep.ServerErr++
			tr.ServerErr++
			ss.ServerErr++
		}
	}
	elapsed := time.Since(begin).Seconds()

	if rep.OK > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed
		rep.LatencyP50Ms = 1000 * stats.Percentile(latencies, 50)
		rep.LatencyP90Ms = 1000 * stats.Percentile(latencies, 90)
		rep.LatencyP99Ms = 1000 * stats.Percentile(latencies, 99)
		sort.Float64s(latencies)
		rep.LatencyMaxMs = 1000 * latencies[len(latencies)-1]
	}
	rep.ColdCount, rep.RepeatCount = len(cold), len(repeat)
	if len(cold) > 0 {
		rep.ColdP50Ms = 1000 * stats.Percentile(cold, 50)
		rep.ColdMeanMs = 1000 * mean(cold)
	}
	if len(repeat) > 0 {
		rep.RepeatP50Ms = 1000 * stats.Percentile(repeat, 50)
		rep.RepeatMeanMs = 1000 * mean(repeat)
	}
	if coldN > 0 {
		rep.ColdMeanIters = float64(coldIters) / float64(coldN)
	}
	if warmN > 0 {
		rep.WarmMeanIters = float64(warmIters) / float64(warmN)
	}
	if *ramp != "" {
		for i := range stepStats {
			if lat := perStepLat[i]; len(lat) > 0 {
				stepStats[i].LatencyP50Ms = 1000 * stats.Percentile(lat, 50)
			}
		}
		rep.RampSteps = stepStats
	}
	if len(targets) > 1 || *targetList != "" {
		for i := range perTarget {
			if lat := perTargetLat[i]; len(lat) > 0 {
				perTarget[i].LatencyP50Ms = 1000 * stats.Percentile(lat, 50)
			}
		}
		rep.Targets = perTarget
	}
	if gwAfter, ok := scrapeGatewayCounters(client, targets[0]); ok && gwScraped {
		rep.GatewayScraped = true
		rep.GatewayFailovers = gwAfter.failovers - gwBefore.failovers
		rep.GatewayBatches = gwAfter.batches - gwBefore.batches
		rep.GatewayCoalesced = gwAfter.coalesced - gwBefore.coalesced
		rep.GatewayDeduped = gwAfter.deduped - gwBefore.deduped
	}
	if after, ok := scrapeCacheCounters(client, *url); ok && scraped {
		rep.MetricsScraped = true
		rep.CacheHits = after.hits - before.hits
		rep.CacheWarmHits = after.warm - before.warm
		rep.CacheMisses = after.misses - before.misses
		if total := rep.CacheHits + rep.CacheWarmHits + rep.CacheMisses; total > 0 {
			rep.CacheHitRate = float64(rep.CacheHits+rep.CacheWarmHits) / float64(total)
		}
	}

	writeReport(&rep, *out)
	fmt.Fprintf(os.Stderr, "pdeload: status breakdown: 2xx=%d (degraded=%d) 429=%d other-4xx=%d 5xx=%d transport=%d local-drops=%d\n",
		rep.OK, rep.Degraded, rep.Shed, rep.ClientErr, rep.ServerErr, rep.TransportEr, rep.LocalDrops)
	for _, ss := range rep.RampSteps {
		fmt.Fprintf(os.Stderr, "pdeload: ramp step %d/%d: rate=%.1frps sent=%d 2xx=%d 429=%d 5xx=%d transport=%d local-drops=%d p50=%.2fms\n",
			ss.Step, len(rep.RampSteps), ss.RateRPS, ss.Sent, ss.OK, ss.Shed, ss.ServerErr, ss.TransportEr, ss.LocalDrops, ss.LatencyP50Ms)
	}
	for _, tr := range rep.Targets {
		fmt.Fprintf(os.Stderr, "pdeload: target %s: sent=%d 2xx=%d 429=%d 4xx=%d 5xx=%d transport=%d p50=%.2fms\n",
			tr.URL, tr.Sent, tr.OK, tr.Shed, tr.ClientErr, tr.ServerErr, tr.TransportEr, tr.LatencyP50Ms)
	}
	if rep.GatewayScraped {
		fmt.Fprintf(os.Stderr, "pdeload: gateway: failovers=%d batches=%d coalesced=%d deduped=%d\n",
			rep.GatewayFailovers, rep.GatewayBatches, rep.GatewayCoalesced, rep.GatewayDeduped)
	}
	if rep.MetricsScraped {
		fmt.Fprintf(os.Stderr, "pdeload: cache: hits=%d warm=%d misses=%d hit-rate=%.1f%%; latency p50 cold=%.2fms repeat=%.2fms\n",
			rep.CacheHits, rep.CacheWarmHits, rep.CacheMisses, 100*rep.CacheHitRate,
			rep.ColdP50Ms, rep.RepeatP50Ms)
	}
	if rep.OK == 0 {
		fmt.Fprintln(os.Stderr, "pdeload: no successful responses")
		os.Exit(1)
	}
}

// streamConfig is the resolved flag set of a -stream run.
type streamConfig struct {
	url        string
	rate       float64
	duration   time.Duration
	conc       int
	problem    string
	n          int
	steps      int
	seedSpread int64
	re         float64
	out        string
}

// runStream drives the -stream scenario: open-loop POST /v1/stream
// trajectories, each read line by line as the server flushes it, measuring
// time-to-first-frame separately from total latency. A stream counts as OK
// when it answered 200; done additionally requires the terminal summary
// line with "done":true (a 200 stream can still be truncated in-band).
func runStream(cfg streamConfig) {
	rep := Report{
		URL: cfg.url, Problem: cfg.problem, N: cfg.n,
		RateRPS: cfg.rate, Duration: cfg.duration.Seconds(), Concurrency: cfg.conc,
		Stream: true, Steps: cfg.steps,
		Codes: map[string]int{},
	}
	body := func(seed int64) []byte {
		b, err := json.Marshal(serve.Request{Problem: cfg.problem, N: cfg.n, Seed: seed, Re: cfg.re, Steps: cfg.steps})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdeload:", err)
			os.Exit(2)
		}
		return b
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	type result struct {
		code    int
		ttff    float64 // seconds to the first flushed frame line
		total   float64 // seconds to stream end
		frames  int
		done    bool
		err     error
		errBody string
	}
	results := make(chan result, 4096)
	slots := make(chan struct{}, cfg.conc)
	var wg sync.WaitGroup
	begin := time.Now()

	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	stop := time.After(cfg.duration)
	i := int64(0)
launch:
	for ; ; i++ {
		select {
		case <-stop:
			break launch
		case <-ticker.C:
		}
		select {
		case slots <- struct{}{}:
		default:
			rep.LocalDrops++
			continue
		}
		rep.Sent++
		seed := 1 + i%cfg.seedSpread
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-slots }()
			start := time.Now()
			hr, err := client.Post(cfg.url+"/v1/stream", "application/x-ndjson", bytes.NewReader(body(seed)))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer hr.Body.Close()
			if hr.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(hr.Body, 4096))
				results <- result{code: hr.StatusCode, errBody: strings.TrimSpace(string(b))}
				return
			}
			r := result{code: hr.StatusCode}
			sc := bufio.NewScanner(hr.Body)
			sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
			for sc.Scan() {
				line := sc.Bytes()
				if len(bytes.TrimSpace(line)) == 0 {
					continue
				}
				if r.ttff == 0 { //pdevet:allow floateq zero is the unset sentinel; measured times are positive
					r.ttff = time.Since(start).Seconds()
				}
				var sum struct {
					Done *bool `json:"done"`
				}
				if json.Unmarshal(line, &sum) == nil && sum.Done != nil {
					r.done = *sum.Done
				} else {
					r.frames++
				}
			}
			if sc.Err() != nil {
				r.err = sc.Err()
			}
			r.total = time.Since(start).Seconds()
			results <- r
		}(seed)
	}
	ticker.Stop()
	go func() { wg.Wait(); close(results) }()

	var ttffs, totals, shares []float64
	for r := range results {
		if r.err != nil && r.code == 0 {
			rep.TransportEr++
			continue
		}
		rep.Codes[fmt.Sprintf("%d", r.code)]++
		switch {
		case r.code == http.StatusOK:
			rep.OK++
			rep.FramesTotal += r.frames
			if r.done {
				rep.StreamsDone++
			}
			ttffs = append(ttffs, r.ttff)
			totals = append(totals, r.total)
			if r.total > 0 {
				shares = append(shares, r.ttff/r.total)
			}
		case r.code == http.StatusTooManyRequests:
			rep.Shed++
		case r.code >= 400 && r.code < 500:
			rep.ClientErr++
			if r.errBody != "" {
				fmt.Fprintf(os.Stderr, "pdeload: 4xx: %s\n", r.errBody)
			}
		default:
			rep.ServerErr++
		}
	}
	elapsed := time.Since(begin).Seconds()

	if rep.OK > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed
		rep.FramesPerSec = float64(rep.FramesTotal) / elapsed
		rep.LatencyP50Ms = 1000 * stats.Percentile(totals, 50)
		rep.LatencyP90Ms = 1000 * stats.Percentile(totals, 90)
		rep.LatencyP99Ms = 1000 * stats.Percentile(totals, 99)
		sort.Float64s(totals)
		rep.LatencyMaxMs = 1000 * totals[len(totals)-1]
		rep.TTFFP50Ms = 1000 * stats.Percentile(ttffs, 50)
		rep.TTFFP90Ms = 1000 * stats.Percentile(ttffs, 90)
		rep.TTFFP99Ms = 1000 * stats.Percentile(ttffs, 99)
		rep.TTFFShareP50 = stats.Percentile(shares, 50)
	}

	writeReport(&rep, cfg.out)
	fmt.Fprintf(os.Stderr, "pdeload: streams: 2xx=%d done=%d 429=%d 4xx=%d 5xx=%d transport=%d local-drops=%d\n",
		rep.OK, rep.StreamsDone, rep.Shed, rep.ClientErr, rep.ServerErr, rep.TransportEr, rep.LocalDrops)
	fmt.Fprintf(os.Stderr, "pdeload: frames=%d (%.1f/s); ttff p50=%.2fms p99=%.2fms; total p50=%.2fms p99=%.2fms; ttff/total p50=%.3f\n",
		rep.FramesTotal, rep.FramesPerSec, rep.TTFFP50Ms, rep.TTFFP99Ms, rep.LatencyP50Ms, rep.LatencyP99Ms, rep.TTFFShareP50)
	if rep.OK == 0 {
		fmt.Fprintln(os.Stderr, "pdeload: no successful streams")
		os.Exit(1)
	}
}

// writeReport encodes the report to stdout and, when set, to out.
func writeReport(rep *Report, out string) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "pdeload:", err)
		os.Exit(2)
	}
	if out == "" {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdeload:", err)
		os.Exit(2)
	}
	fenc := json.NewEncoder(f)
	fenc.SetIndent("", "  ")
	if err := fenc.Encode(rep); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "pdeload:", err)
		os.Exit(2)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pdeload:", err)
		os.Exit(2)
	}
}

// rampStage is one stage of the resolved load profile: a flat -rate run is
// a single stage spanning the whole duration.
type rampStage struct {
	rate float64
	dur  time.Duration
}

// rampProfile resolves -ramp START:END:STEPS (or, when empty, the flat
// -rate) into the staged schedule the launch loop walks: total split
// evenly across the steps, rates interpolated linearly from START to END
// so the final stage offers exactly END rps.
func rampProfile(spec string, rate float64, total time.Duration) ([]rampStage, error) {
	if spec == "" {
		return []rampStage{{rate: rate, dur: total}}, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-ramp %q: want START:END:STEPS", spec)
	}
	start, err1 := strconv.ParseFloat(parts[0], 64)
	end, err2 := strconv.ParseFloat(parts[1], 64)
	steps, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("-ramp %q: want numeric START:END:STEPS", spec)
	}
	if start <= 0 || end <= 0 || steps < 1 {
		return nil, fmt.Errorf("-ramp %q: rates must be positive and STEPS at least 1", spec)
	}
	stages := make([]rampStage, steps)
	dur := total / time.Duration(steps)
	for k := range stages {
		r := start
		if steps > 1 {
			r = start + (end-start)*float64(k)/float64(steps-1)
		}
		stages[k] = rampStage{rate: r, dur: dur}
	}
	return stages, nil
}

// cacheCounters is the subset of /metrics pdeload understands.
type cacheCounters struct {
	hits, warm, misses uint64
}

// scrapeCacheCounters reads the server's cache counters from /metrics;
// ok=false when the endpoint is unreachable (pdeload then simply omits the
// cache section of the report).
func scrapeCacheCounters(client *http.Client, url string) (cacheCounters, bool) {
	var c cacheCounters
	hr, err := client.Get(url + "/metrics")
	if err != nil || hr.StatusCode != http.StatusOK {
		if hr != nil {
			io.Copy(io.Discard, hr.Body)
			hr.Body.Close()
		}
		return c, false
	}
	defer hr.Body.Close()
	sc := bufio.NewScanner(hr.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, f := range []struct {
			prefix string
			dst    *uint64
		}{
			{"pdeserve_cache_hits_total ", &c.hits},
			{"pdeserve_cache_warm_hits_total ", &c.warm},
			{"pdeserve_cache_misses_total ", &c.misses},
		} {
			if v, ok := strings.CutPrefix(line, f.prefix); ok {
				n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
				if err == nil {
					*f.dst = n
				}
			}
		}
	}
	return c, sc.Err() == nil
}

// gatewayCounters is the subset of a pdegw /metrics page pdeload
// understands.
type gatewayCounters struct {
	failovers, batches, coalesced, deduped uint64
}

// scrapeGatewayCounters reads the pdegw_* counters from a target's
// /metrics page; ok=false when the endpoint is unreachable or the page
// exposes no pdegw_ plane at all (a plain pdeserved backend).
func scrapeGatewayCounters(client *http.Client, url string) (gatewayCounters, bool) {
	var c gatewayCounters
	hr, err := client.Get(url + "/metrics")
	if err != nil || hr.StatusCode != http.StatusOK {
		if hr != nil {
			io.Copy(io.Discard, hr.Body)
			hr.Body.Close()
		}
		return c, false
	}
	defer hr.Body.Close()
	isGateway := false
	sc := bufio.NewScanner(hr.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pdegw_") {
			isGateway = true
		}
		for _, f := range []struct {
			prefix string
			dst    *uint64
		}{
			{"pdegw_failovers_total ", &c.failovers},
			{"pdegw_batches_total ", &c.batches},
			{"pdegw_batch_coalesced_total ", &c.coalesced},
			{"pdegw_batch_deduped_total ", &c.deduped},
		} {
			if v, ok := strings.CutPrefix(line, f.prefix); ok {
				n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
				if err == nil {
					*f.dst = n
				}
			}
		}
	}
	return c, isGateway && sc.Err() == nil
}

// mean is the arithmetic mean of a non-empty sample.
func mean(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}
